"""Cluster harness: builds a full simulated deployment and drives it.

The harness wires together everything a protocol run needs -- simulator,
network, keystore, directory, one replica object per configured replica, and
any number of clients -- and offers convenience helpers used by the examples,
the integration tests, and the protocol-mode benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.crypto import KeyStore
from repro.common.types import ReplicaId
from repro.config import SystemConfig
from repro.consensus.directory import Directory
from repro.consensus.pbft.client import Client
from repro.consensus.pbft.replica import PbftReplica
from repro.core.replica import RingBftReplica
from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator
from repro.sim.network import Network, NetworkConditions
from repro.sim.regions import LatencyModel
from repro.storage.kvstore import ShardedKeyValueStore
from repro.txn.transaction import Transaction


@dataclass
class Cluster:
    """A running simulated deployment of one protocol."""

    config: SystemConfig
    directory: Directory
    simulator: Simulator
    network: Network
    keystore: KeyStore
    replicas: dict[ReplicaId, PbftReplica]
    clients: dict[str, Client] = field(default_factory=dict)
    table: ShardedKeyValueStore | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        config: SystemConfig,
        *,
        replica_class: type[PbftReplica] = RingBftReplica,
        num_clients: int = 1,
        batch_size: int | None = None,
        latency: LatencyModel | None = None,
        seed: int = 2022,
        preload_table: bool = True,
    ) -> "Cluster":
        """Build a cluster running ``replica_class`` on every replica."""
        directory = Directory.from_config(config)
        simulator = Simulator(seed=seed)
        network = Network(simulator, latency=latency, conditions=NetworkConditions())
        keystore = KeyStore()
        table = ShardedKeyValueStore(config.shard_ids, config.workload.num_records)

        replicas: dict[ReplicaId, PbftReplica] = {}
        for shard in config.shards:
            partition = table.build_partition(shard.shard_id) if preload_table else None
            for replica_id in directory.replicas_of(shard.shard_id):
                replicas[replica_id] = replica_class(
                    replica_id,
                    directory,
                    network,
                    keystore,
                    batch_size=batch_size or 1,
                    initial_records=partition,
                )

        cluster = cls(
            config=config,
            directory=directory,
            simulator=simulator,
            network=network,
            keystore=keystore,
            replicas=replicas,
            table=table,
        )
        for i in range(num_clients):
            cluster.add_client(f"client-{i}")
        return cluster

    def add_client(self, client_id: str, region: str = "local") -> Client:
        if client_id in self.clients:
            raise ConfigurationError(f"client {client_id!r} already exists")
        client = Client(client_id, self.directory, self.network, self.keystore, region=region)
        self.clients[client_id] = client
        return client

    # ------------------------------------------------------------------
    # access helpers
    # ------------------------------------------------------------------

    def replica(self, shard: int, index: int) -> PbftReplica:
        return self.replicas[ReplicaId(shard=shard, index=index)]

    def shard_replicas(self, shard: int) -> list[PbftReplica]:
        return [self.replicas[r] for r in self.directory.replicas_of(shard)]

    def primary_of(self, shard: int, view: int = 0) -> PbftReplica:
        return self.replicas[self.directory.primary_of(shard, view)]

    @property
    def client(self) -> Client:
        """The first client (convenience for single-client scenarios)."""
        return next(iter(self.clients.values()))

    # ------------------------------------------------------------------
    # driving the simulation
    # ------------------------------------------------------------------

    def submit(self, txn: Transaction, client_id: str | None = None) -> None:
        """Submit a transaction through a client (defaults to the first client)."""
        client = self.clients[client_id] if client_id else self.client
        client.submit(txn)

    def run(self, duration: float | None = None, max_events: int | None = 2_000_000) -> float:
        """Run the simulation until quiescent, for ``duration`` seconds, or ``max_events``."""
        return self.simulator.run(until=duration, max_events=max_events)

    def run_until_clients_done(self, timeout: float = 120.0, max_events: int = 5_000_000) -> bool:
        """Run until every client transaction completed or the virtual timeout passes."""
        deadline = self.simulator.now + timeout
        fired = 0
        while fired < max_events:
            if all(client.outstanding == 0 for client in self.clients.values()):
                return True
            nxt_exists = self.simulator.pending_events > 0
            if not nxt_exists or self.simulator.now > deadline:
                break
            self.simulator.step()
            fired += 1
        return all(client.outstanding == 0 for client in self.clients.values())

    # ------------------------------------------------------------------
    # deployment-wide metrics and invariants
    # ------------------------------------------------------------------

    def completed_transactions(self) -> int:
        return sum(client.completed_count for client in self.clients.values())

    def latencies(self) -> list[float]:
        values: list[float] = []
        for client in self.clients.values():
            values.extend(client.latencies())
        return values

    def total_messages(self) -> int:
        return sum(node.stats.total_messages for node in self.replicas.values())

    def message_counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for node in self.replicas.values():
            for name, count in node.stats.sent_count.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def ledgers_consistent(self, shard: int) -> bool:
        """Every non-crashed replica of ``shard`` holds a ledger with the same blocks.

        Replicas that lag (fewer blocks) are compared on their common prefix,
        mirroring the paper's non-divergence property (identical order, some
        replicas may be behind until the next checkpoint).
        """
        chains = [
            [block.block_hash() for block in replica.ledger.blocks()]
            for replica in self.shard_replicas(shard)
            if not replica.crashed
        ]
        if not chains:
            return True
        for a in chains:
            for b in chains:
                prefix = min(len(a), len(b))
                if a[:prefix] != b[:prefix]:
                    return False
        return True

    def executed_in_same_order(self, shard: int, txn_ids: set[str]) -> bool:
        """All replicas of ``shard`` executed the given transactions in one order."""
        orders = {
            tuple(replica.ledger.commit_order(txn_ids))
            for replica in self.shard_replicas(shard)
            if not replica.crashed and replica.executed_txn_count > 0
        }
        return len(orders) <= 1
