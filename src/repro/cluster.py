"""Deprecated simulator-only harness; use :class:`repro.engine.Deployment`.

``Cluster`` predates the pluggable execution engine: it hard-wired every
experiment, benchmark, and example to the discrete-event simulator.  The
harness now lives in :mod:`repro.engine.deployment`, where the same code runs
on either the simulator or the asyncio real-time backend::

    # old (sim only)                      # new (any backend)
    Cluster.build(config, ...)            Deployment.build(config, backend="sim", ...)

``Cluster`` remains as a thin shim -- a :class:`Deployment` pinned to the
simulator backend -- so existing call sites keep working unchanged.
"""

from __future__ import annotations

from repro.consensus.pbft.replica import PbftReplica
from repro.core.replica import RingBftReplica
from repro.config import SystemConfig
from repro.engine.backends import SimBackend
from repro.engine.deployment import Deployment
from repro.sim.regions import LatencyModel

__all__ = ["Cluster"]


class Cluster(Deployment):
    """Deprecated: a :class:`Deployment` pinned to the simulator backend."""

    @classmethod
    def build(  # type: ignore[override]
        cls,
        config: SystemConfig,
        *,
        replica_class: type[PbftReplica] = RingBftReplica,
        num_clients: int = 1,
        batch_size: int | None = None,
        latency: LatencyModel | None = None,
        seed: int = 2022,
        preload_table: bool = True,
    ) -> "Cluster":
        """Build a simulator-backed deployment (legacy signature)."""
        return super().build(
            config,
            backend=SimBackend(seed=seed, latency=latency),
            replica_class=replica_class,
            num_clients=num_clients,
            batch_size=batch_size,
            seed=seed,
            preload_table=preload_table,
        )
