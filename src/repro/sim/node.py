"""Base runtime for simulated nodes (replicas and clients).

A node owns an address on the network, a region, per-node message statistics,
and a small timer facility layered over the simulation kernel.  Subclasses
implement :meth:`on_message` to run their protocol logic; delivery happens
through :meth:`deliver` so that crashed nodes can silently discard traffic,
mirroring a real fail-stop node.
"""

from __future__ import annotations

from typing import Hashable

from repro.common.messages import Message, MessageStats
from repro.sim.kernel import Simulator, TimerHandle
from repro.sim.network import Network


class Node:
    """A single process attached to the simulated network."""

    def __init__(self, address: Hashable, region: str, network: Network) -> None:
        self.address = address
        self.region = region
        self.network = network
        self.stats = MessageStats()
        self.crashed = False
        self._timers: dict[str, TimerHandle] = {}
        network.register(self)

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------

    @property
    def simulator(self) -> Simulator:
        return self.network.simulator

    @property
    def now(self) -> float:
        return self.simulator.now

    def send(self, dst: Hashable, message: Message) -> None:
        """Send a single message; crashed nodes send nothing."""
        if self.crashed:
            return
        self.stats.record(message)
        self.network.send(self.address, dst, message)

    def broadcast(self, dsts: list | tuple, message: Message, include_self: bool = False) -> None:
        """Send ``message`` to every destination; optionally loop it back to self.

        PBFT replicas count their own vote, so ``include_self=True`` delivers
        the message locally without a network hop.  The fan-out rides the
        network's multicast fast path: one stats entry per audience (wire
        size resolved once) and one shared payload across the deliveries.
        """
        if self.crashed:
            return
        targets = [dst for dst in dsts if dst != self.address]
        if targets:
            self.stats.record_fanout(message, len(targets))
            self.network.multicast(self.address, targets, message)
        if include_self:
            self.deliver_loopback(message)

    def deliver(self, message: Message) -> None:
        """Entry point used by the network; ignores traffic while crashed."""
        if self.crashed:
            return
        self.on_message(message)

    def deliver_loopback(self, message: Message) -> None:
        """Local delivery of this node's own broadcast (no network hop).

        Subclasses that gate network deliveries (e.g. MAC verification) may
        override this to skip the gate: a loopback never crossed the network,
        whereas a *received* message claiming this node as sender must still
        be verified -- trusting the sender field would let anyone spoof it.
        """
        self.deliver(message)

    def on_message(self, message: Message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def set_timer(self, name: str, delay: float, callback) -> TimerHandle:
        """(Re)arm a named timer; an existing timer with the same name is cancelled."""
        self.cancel_timer(name)
        handle = self.simulator.schedule(delay, self._timer_wrapper(name, callback))
        self._timers[name] = handle
        return handle

    def _timer_wrapper(self, name: str, callback):
        def _fire() -> None:
            self._timers.pop(name, None)
            if not self.crashed:
                callback()

        return _fire

    def cancel_timer(self, name: str) -> None:
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    def has_timer(self, name: str) -> bool:
        return name in self._timers

    # ------------------------------------------------------------------
    # fault control
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop the node: stop sending, receiving, and firing timers."""
        self.crashed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()

    def recover(self) -> None:
        self.crashed = False
