"""Compatibility shim: the WAN latency model lives in :mod:`repro.netem.regions`.

The region coordinates, RTT derivation, and :class:`LatencyModel` moved into
the unified link-emulation subsystem when all three execution backends
started sharing one link model; this module keeps the historical import path
working.
"""

from repro.netem.regions import (
    REGION_COORDINATES,
    LatencyModel,
    region_rtt_seconds,
    rtt_matrix,
)

__all__ = [
    "REGION_COORDINATES",
    "LatencyModel",
    "region_rtt_seconds",
    "rtt_matrix",
]
