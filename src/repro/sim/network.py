"""Simulated WAN connecting clients and replicas.

The network delivers protocol messages after the one-way delay decided by the
shared link-emulation subsystem (:mod:`repro.netem`): region-to-region
propagation, per-message serialisation delay, jitter, steady-state loss, and
the injected fault conditions (message loss, one-directional link blocks for
the paper's *no communication* / *partial communication* cross-shard attacks,
and full node isolation) are all owned by one :class:`~repro.netem.LinkEmulator`
-- the same engine the real-time and socket transports consume, so a WAN
scenario expressed once runs identically on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.errors import ConfigurationError, NetworkError
from repro.netem.conditions import NetworkConditions
from repro.netem.emulator import LinkEmulator
from repro.netem.policy import NetemPolicy
from repro.netem.regions import LatencyModel
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.messages import Message
    from repro.sim.node import Node

NodeAddress = Hashable

__all__ = ["Network", "NetworkConditions", "NodeAddress"]


@dataclass
class _DeliveryStats:
    delivered: int = 0
    dropped: int = 0
    bytes_delivered: int = 0
    #: Fan-out operations served by the multicast fast path.  Each multicast
    #: is counted once here regardless of audience size; the per-copy
    #: outcomes still land in ``delivered``/``dropped``.
    multicasts: int = 0


class Network:
    """Message fabric shared by all nodes of one simulated deployment."""

    def __init__(
        self,
        simulator: Simulator,
        latency: LatencyModel | None = None,
        conditions: NetworkConditions | None = None,
        emulator: LinkEmulator | None = None,
    ) -> None:
        self._sim = simulator
        if emulator is None:
            emulator = LinkEmulator(
                NetemPolicy(latency=latency or LatencyModel()),
                conditions,
                seed=simulator.seed,
            )
        elif latency is not None or conditions is not None:
            # An emulator owns its policy and conditions; accepting the
            # standalone arguments alongside it would silently drop them.
            raise ConfigurationError(
                "pass either an emulator or latency/conditions, not both"
            )
        self._emulator = emulator
        self._nodes: dict[NodeAddress, "Node"] = {}
        self.stats = _DeliveryStats()

    @property
    def simulator(self) -> Simulator:
        return self._sim

    @property
    def emulator(self) -> LinkEmulator:
        return self._emulator

    @property
    def conditions(self) -> NetworkConditions:
        return self._emulator.conditions

    @property
    def latency_model(self) -> LatencyModel:
        policy = self._emulator.policy
        return policy.latency if policy is not None else LatencyModel()

    def register(self, node: "Node") -> None:
        """Attach a node to the fabric; addresses must be unique."""
        if node.address in self._nodes:
            raise NetworkError(f"address {node.address!r} is already registered")
        self._nodes[node.address] = node
        self._emulator.assign_region(node.address, node.region)

    def node(self, address: NodeAddress) -> "Node":
        if address not in self._nodes:
            raise NetworkError(f"unknown node address {address!r}")
        return self._nodes[address]

    def known_addresses(self) -> tuple[NodeAddress, ...]:
        return tuple(self._nodes)

    def send(self, src: NodeAddress, dst: NodeAddress, message: "Message") -> None:
        """Deliver ``message`` from ``src`` to ``dst`` after the modelled delay.

        Delivery is skipped (silently, as in a real lossy network) when fault
        conditions block the link or a loss coin comes up.
        """
        self._send_one(src, dst, message, message.wire_size())

    def _send_one(
        self, src: NodeAddress, dst: NodeAddress, message: "Message", size: int
    ) -> None:
        if dst not in self._nodes:
            raise NetworkError(f"cannot deliver to unknown address {dst!r}")
        deliver, delay = self._emulator.decide(src, dst, size)
        if not deliver:
            self.stats.dropped += 1
            return
        # One shared bound method + argument tuple per delivery (no closure
        # allocation): the kernel carries the args in the slotted event.
        self._sim.schedule(delay, self._deliver_event, self._nodes[dst], message, size)

    def _deliver_event(self, receiver: "Node", message: "Message", size: int) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += size
        receiver.deliver(message)

    def multicast(
        self,
        src: NodeAddress,
        dsts: list[NodeAddress] | tuple[NodeAddress, ...],
        message: "Message",
    ) -> None:
        """Fan one copy of ``message`` out to every destination (self excluded upstream).

        Fast path: the wire size is resolved once per message, every
        destination shares the same payload object, and the fan-out is
        counted once in the delivery stats.  Per-destination link decisions
        (loss coins, latency draws) are identical to ``n`` individual sends,
        so fault injection and determinism are unaffected.

        Copies whose links drew the *same* delay (the common case: an
        intra-shard broadcast over symmetric links with no jitter) are
        scheduled as **one calendar entry** that delivers to every receiver
        in destination order.  Separate same-delay events used to carry
        consecutive tie-breakers and therefore already ran back-to-back in
        destination order, so the grouped entry executes the identical
        global callback sequence with ``n - 1`` fewer heap operations.
        """
        if not dsts:
            return
        size = message.wire_size()
        self.stats.multicasts += 1
        buckets: dict[float, list["Node"]] = {}
        for dst in dsts:
            if dst not in self._nodes:
                raise NetworkError(f"cannot deliver to unknown address {dst!r}")
            deliver, delay = self._emulator.decide(src, dst, size)
            if not deliver:
                self.stats.dropped += 1
                continue
            buckets.setdefault(delay, []).append(self._nodes[dst])
        for delay, receivers in buckets.items():
            if len(receivers) == 1:
                self._sim.schedule(delay, self._deliver_event, receivers[0], message, size)
            else:
                self._sim.schedule(delay, self._deliver_group, receivers, message, size)

    def _deliver_group(self, receivers: list["Node"], message: "Message", size: int) -> None:
        for receiver in receivers:
            self.stats.delivered += 1
            self.stats.bytes_delivered += size
            receiver.deliver(message)
