"""Simulated WAN connecting clients and replicas.

The network delivers protocol messages with region-to-region latency and
per-message serialisation delay, and exposes the knobs fault injection needs:
message-loss probability, one-directional link blocks (to create the paper's
*no communication* and *partial communication* cross-shard attacks), and full
node isolation (crash).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro.errors import NetworkError
from repro.sim.kernel import Simulator
from repro.sim.regions import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.messages import Message
    from repro.sim.node import Node

NodeAddress = Hashable


@dataclass
class NetworkConditions:
    """Mutable fault state applied to every message the network carries."""

    drop_probability: float = 0.0
    blocked_links: set[tuple[NodeAddress, NodeAddress]] = field(default_factory=set)
    isolated_nodes: set[NodeAddress] = field(default_factory=set)

    def block_link(self, src: NodeAddress, dst: NodeAddress) -> None:
        self.blocked_links.add((src, dst))

    def unblock_link(self, src: NodeAddress, dst: NodeAddress) -> None:
        self.blocked_links.discard((src, dst))

    def isolate(self, node: NodeAddress) -> None:
        self.isolated_nodes.add(node)

    def restore(self, node: NodeAddress) -> None:
        self.isolated_nodes.discard(node)

    def allows(self, src: NodeAddress, dst: NodeAddress, coin: float) -> bool:
        """Whether a message from ``src`` to ``dst`` is delivered."""
        if src in self.isolated_nodes or dst in self.isolated_nodes:
            return False
        if (src, dst) in self.blocked_links:
            return False
        return coin >= self.drop_probability


@dataclass
class _DeliveryStats:
    delivered: int = 0
    dropped: int = 0
    bytes_delivered: int = 0
    #: Fan-out operations served by the multicast fast path.  Each multicast
    #: is counted once here regardless of audience size; the per-copy
    #: outcomes still land in ``delivered``/``dropped``.
    multicasts: int = 0


class Network:
    """Message fabric shared by all nodes of one simulated deployment."""

    def __init__(
        self,
        simulator: Simulator,
        latency: LatencyModel | None = None,
        conditions: NetworkConditions | None = None,
    ) -> None:
        self._sim = simulator
        self._latency = latency or LatencyModel()
        self.conditions = conditions or NetworkConditions()
        self._nodes: dict[NodeAddress, "Node"] = {}
        self._regions: dict[NodeAddress, str] = {}
        self.stats = _DeliveryStats()

    @property
    def simulator(self) -> Simulator:
        return self._sim

    @property
    def latency_model(self) -> LatencyModel:
        return self._latency

    def register(self, node: "Node") -> None:
        """Attach a node to the fabric; addresses must be unique."""
        if node.address in self._nodes:
            raise NetworkError(f"address {node.address!r} is already registered")
        self._nodes[node.address] = node
        self._regions[node.address] = node.region

    def node(self, address: NodeAddress) -> "Node":
        if address not in self._nodes:
            raise NetworkError(f"unknown node address {address!r}")
        return self._nodes[address]

    def known_addresses(self) -> tuple[NodeAddress, ...]:
        return tuple(self._nodes)

    def send(self, src: NodeAddress, dst: NodeAddress, message: "Message") -> None:
        """Deliver ``message`` from ``src`` to ``dst`` after the modelled delay.

        Delivery is skipped (silently, as in a real lossy network) when fault
        conditions block the link or the loss coin comes up.
        """
        self._send_one(src, dst, message, message.wire_size(), self._regions.get(src, "local"))

    def _send_one(
        self,
        src: NodeAddress,
        dst: NodeAddress,
        message: "Message",
        size: int,
        src_region: str,
    ) -> None:
        if dst not in self._nodes:
            raise NetworkError(f"cannot deliver to unknown address {dst!r}")
        coin = self._sim.rng.random()
        if not self.conditions.allows(src, dst, coin):
            self.stats.dropped += 1
            return
        delay = self._latency.message_delay(src_region, self._regions[dst], size)
        jitter = delay * self._latency.jitter_fraction * self._sim.rng.random()
        receiver = self._nodes[dst]

        def _deliver() -> None:
            self.stats.delivered += 1
            self.stats.bytes_delivered += size
            receiver.deliver(message)

        self._sim.schedule(delay + jitter, _deliver)

    def multicast(
        self,
        src: NodeAddress,
        dsts: list[NodeAddress] | tuple[NodeAddress, ...],
        message: "Message",
    ) -> None:
        """Fan one copy of ``message`` out to every destination (self excluded upstream).

        Fast path: the wire size and source region are resolved once per
        message, every destination shares the same payload object, and the
        fan-out is counted once in the delivery stats.  Per-destination drop
        coins, latency draws, and delivery events are identical to ``n``
        individual sends, so fault injection and determinism are unaffected.
        """
        if not dsts:
            return
        size = message.wire_size()
        src_region = self._regions.get(src, "local")
        self.stats.multicasts += 1
        for dst in dsts:
            self._send_one(src, dst, message, size, src_region)
