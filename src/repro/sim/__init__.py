"""Deterministic discrete-event simulation substrate (kernel, WAN network, nodes)."""

from repro.sim.kernel import Simulator, TimerHandle
from repro.sim.network import Network, NetworkConditions
from repro.sim.regions import LatencyModel, region_rtt_seconds
from repro.sim.node import Node

__all__ = [
    "Simulator",
    "TimerHandle",
    "Network",
    "NetworkConditions",
    "LatencyModel",
    "region_rtt_seconds",
    "Node",
]
