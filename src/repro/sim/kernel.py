"""Deterministic discrete-event simulation kernel.

The paper evaluates RingBFT on a real WAN deployment; this reproduction runs
the protocols inside a deterministic simulator so that every experiment is
repeatable and Byzantine/network faults can be injected precisely.  The
kernel is a classic event-calendar design: callbacks are executed in
timestamp order, ties broken by insertion order, so a given seed always
produces the same execution.

Events are deliberately lean: one ``__slots__`` object per calendar entry,
carrying the callback plus a positional-argument tuple.  Hot callers (the
network's delivery path fires one event per message copy) schedule a shared
bound method with per-event arguments instead of allocating a fresh closure
per delivery, which measurably lifts events/sec (see ``bench_hotpath.py``'s
``kernel_events`` micro-benchmark).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable

from repro.errors import SimulationError

_NO_ARGS: tuple = ()


class _Event:
    """One calendar entry: (time, tie_breaker) ordered, payload uncompared."""

    __slots__ = ("time", "tie_breaker", "callback", "args", "cancelled", "fired")

    def __init__(
        self, time: float, tie_breaker: int, callback: Callable[..., None], args: tuple
    ) -> None:
        self.time = time
        self.tie_breaker = tie_breaker
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.tie_breaker < other.tie_breaker


class TimerHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _Event, simulator: "Simulator") -> None:
        self._event = event
        self._simulator = simulator

    def cancel(self) -> None:
        """Cancel the pending callback; cancelling twice is harmless."""
        self._simulator._cancel(self._event)

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def fire_time(self) -> float:
        return self._event.time


class Simulator:
    """Single-threaded deterministic event loop with virtual time in seconds.

    Cancelled events use *lazy deletion*: they stay in the heap (marked
    cancelled) and are discarded when they surface, while a live-event counter
    keeps :attr:`pending_events` O(1) -- harness loops consult it once per
    event fired, so a linear scan would make driving the simulator O(n^2).
    """

    def __init__(self, seed: int = 2022) -> None:
        self._now = 0.0
        self._queue: list[_Event] = []
        self._counter = itertools.count()
        self._rng = random.Random(seed)
        self.seed = seed
        self._processed = 0
        self._live = 0  # non-cancelled events currently in the heap

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def rng(self) -> random.Random:
        """Shared deterministic random source for jitter and workload draws."""
        return self._rng

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return self._live

    def _cancel(self, event: _Event) -> None:
        if not event.cancelled and not event.fired:
            event.cancelled = True
            self._live -= 1

    def schedule(self, delay: float, callback: Callable[..., None], *args) -> TimerHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Passing the arguments here (instead of closing over them) lets hot
        callers reuse one bound method across millions of events.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = _Event(self._now + delay, next(self._counter), callback, args or _NO_ARGS)
        heapq.heappush(self._queue, event)
        self._live += 1
        return TimerHandle(event, self)

    def schedule_at(self, time: float, callback: Callable[..., None], *args) -> TimerHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self._now), callback, *args)

    def step(self) -> bool:
        """Run the next pending event; returns False when the calendar is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            event.fired = True
            self._live -= 1
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run events until the calendar drains, ``until`` is reached, or ``max_events`` fire.

        Returns the virtual time at which the run stopped.
        """
        fired = 0
        while self._queue:
            if max_events is not None and fired >= max_events:
                break
            nxt = self._peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self._now = until
                break
            if not self.step():
                break
            fired += 1
        if until is not None and self._now < until and self._peek_time() is None:
            self._now = until
        return self._now

    def _peek_time(self) -> float | None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None
