"""Baseline file: grandfathered findings that do not fail the build.

The baseline maps finding fingerprints to a human-readable record of what was
grandfathered and why the fingerprint is stable (rule, path, symbol, message
at capture time).  New findings -- fingerprints not in the file -- still fail;
fixing a grandfathered finding makes its entry stale, which ``ringbft lint
--write-baseline`` prunes on the next capture.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


def load_baseline(path: Path | str) -> frozenset[str]:
    """Fingerprints grandfathered by the baseline at ``path`` (may not exist)."""
    path = Path(path)
    if not path.exists():
        return frozenset()
    data = json.loads(path.read_text())
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    return frozenset(entry["fingerprint"] for entry in data.get("findings", []))


def write_baseline(path: Path | str, findings: list[Finding]) -> None:
    """Capture ``findings`` as the new baseline (sorted, reproducible)."""
    entries = [
        {
            "fingerprint": finding.fingerprint,
            "rule": finding.rule,
            "path": finding.path,
            "symbol": finding.symbol,
            "message": finding.message,
        }
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
