"""Text and JSON reporters for analysis reports."""

from __future__ import annotations

import json

from repro.analysis.core import Report


def render_text(report: Report) -> str:
    lines: list[str] = []
    for finding in report.findings:
        where = finding.location()
        symbol = f" in {finding.symbol}" if finding.symbol else ""
        lines.append(f"{where}: [{finding.rule}]{symbol} {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if lines:
        lines.append("")
    lines.append(
        f"{len(report.findings)} finding(s), {len(report.baselined)} baselined, "
        f"{report.suppressed_count} suppressed, {report.files_analyzed} file(s), "
        f"{len(report.rules_run)} rule(s)"
    )
    return "\n".join(lines)


def render_json(report: Report) -> str:
    payload = {
        "clean": report.clean,
        "summary": {
            "findings": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed_count,
            "files_analyzed": report.files_analyzed,
            "rules_run": list(report.rules_run),
        },
        "findings": [finding.to_json() for finding in report.findings],
        "baselined": [finding.to_json() for finding in report.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
