"""Analyzer core: source model, rule registry, and the analysis driver.

Rules are small classes registered by id.  A rule inspects either one parsed
file at a time (:meth:`Rule.check_file`) or the whole project at once
(:meth:`Rule.check_project`) -- the protocol-invariant rules (MAC coverage,
codec completeness, lock discipline) need the cross-file view, the local
hygiene rules do not.  The driver parses every file once, runs the rules,
applies suppression pragmas and the baseline, and returns a :class:`Report`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding, fingerprint_findings
from repro.analysis.pragmas import PragmaIndex, parse_pragmas, pragma_findings


@dataclass
class SourceFile:
    """One parsed python source file."""

    path: Path
    rel: str  # repo-relative POSIX path
    module: str  # dotted module name ("" outside a package root)
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    pragmas: PragmaIndex | None = None

    def line(self, lineno: int) -> str:
        if 0 < lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST | int, message: str, symbol: str = "") -> Finding:
        lineno = node if isinstance(node, int) else getattr(node, "lineno", 0)
        return Finding(
            rule=rule,
            path=self.rel,
            line=lineno,
            message=message,
            symbol=symbol,
            snippet=self.line(lineno),
        )


class Rule:
    """Base class: subclasses set ``id``/``title``/``rationale``."""

    id: str = ""
    title: str = ""
    #: One-paragraph statement of the protocol invariant the rule guards.
    rationale: str = ""

    def check_file(self, source: SourceFile, project: "Project") -> Iterable[Finding]:
        return ()

    def check_project(self, project: "Project") -> Iterable[Finding]:
        return ()


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"rule id {cls.id!r} registered twice")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> dict[str, Rule]:
    from repro.analysis import rules as _rules  # noqa: F401  (registers on import)

    return dict(_REGISTRY)


def known_rule_ids() -> frozenset[str]:
    from repro.analysis.pragmas import PRAGMA_SYNTAX, PRAGMA_UNUSED

    return frozenset(all_rules()) | {PRAGMA_SYNTAX, PRAGMA_UNUSED}


# ---------------------------------------------------------------------------
# project model
# ---------------------------------------------------------------------------


@dataclass
class Project:
    """Everything a rule may look at: parsed sources plus test-file text."""

    root: Path
    files: list[SourceFile]
    #: Raw text of test files, keyed by repo-relative path.  Rules that
    #: require *test evidence* (layout byte-identity) grep these.
    test_texts: dict[str, str] = field(default_factory=dict)

    def modules(self, *prefixes: str) -> Iterator[SourceFile]:
        """Files whose dotted module name matches one of ``prefixes``."""
        for source in self.files:
            module = source.module
            if any(module == p or module.startswith(p + ".") for p in prefixes):
                yield source


def _module_name(rel_to_src: Path) -> str:
    parts = list(rel_to_src.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def load_project(
    root: Path,
    src: Path | None = None,
    test_dirs: tuple[Path, ...] = (),
) -> tuple[Project, list[Finding]]:
    """Parse every ``.py`` under ``src`` (default ``<root>/src``).

    Returns the project plus parse-failure findings (a file the analyzer
    cannot parse cannot be certified, so it is an error, not a skip).
    """
    root = root.resolve()
    src = (src or root / "src").resolve()
    errors: list[Finding] = []
    files: list[SourceFile] = []
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Finding(rule="parse-error", path=rel, line=exc.lineno or 0,
                        message=f"cannot parse: {exc.msg}")
            )
            continue
        files.append(
            SourceFile(
                path=path,
                rel=rel,
                module=_module_name(path.relative_to(src)),
                source=source,
                tree=tree,
                lines=source.splitlines(),
            )
        )
    test_texts: dict[str, str] = {}
    for test_dir in test_dirs or (root / "tests",):
        test_dir = Path(test_dir)
        if not test_dir.is_absolute():
            test_dir = root / test_dir
        if not test_dir.is_dir():
            continue
        for path in sorted(test_dir.rglob("*.py")):
            test_texts[path.relative_to(root).as_posix()] = path.read_text()
    return Project(root=root, files=files, test_texts=test_texts), errors


# ---------------------------------------------------------------------------
# shared AST helpers (used by several rule modules)
# ---------------------------------------------------------------------------


def build_import_table(tree: ast.Module) -> dict[str, str]:
    """Map local names to the fully qualified names they import.

    ``import time as _t``     -> {"_t": "time"}
    ``from time import time`` -> {"time": "time.time"}
    ``from x import y as z``  -> {"z": "x.y"}
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def resolve_call_target(func: ast.expr, imports: dict[str, str]) -> str | None:
    """Best-effort dotted name of a call target, resolved through imports."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id, node.id)
    parts.append(base)
    return ".".join(reversed(parts))


class SymbolVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing class/function qualname."""

    def __init__(self) -> None:
        self._stack: list[str] = []

    @property
    def symbol(self) -> str:
        return ".".join(self._stack)

    def _visit_scoped(self, node: ast.AST, name: str) -> None:
        self._stack.append(name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, node.name)


# ---------------------------------------------------------------------------
# analysis driver
# ---------------------------------------------------------------------------


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: list[Finding]  # active findings (not suppressed, not baselined)
    baselined: list[Finding]
    suppressed_count: int
    files_analyzed: int
    rules_run: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.findings


def run_analysis(
    root: Path | str,
    *,
    src: Path | None = None,
    test_dirs: tuple[Path, ...] = (),
    select: tuple[str, ...] = (),
    baseline: frozenset[str] = frozenset(),
) -> Report:
    """Run the registered rules over the repo at ``root``.

    ``select`` restricts to the named rule ids (pragma bookkeeping findings
    are only emitted on full runs, where "unused" is meaningful).
    ``baseline`` is a set of grandfathered fingerprints to set aside.
    """
    rules = all_rules()
    if select:
        unknown = set(select) - set(rules)
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = {rule_id: rules[rule_id] for rule_id in select}
    project, findings = load_project(Path(root), src=src, test_dirs=test_dirs)
    known = known_rule_ids()
    for source in project.files:
        source.pragmas = parse_pragmas(source.source, known)
    for rule in rules.values():
        for source in project.files:
            findings.extend(rule.check_file(source, project))
        findings.extend(rule.check_project(project))

    # Suppression pass: a pragma on (or immediately above) the finding's line
    # absorbs it; marking usage happens inside ``suppresses``.
    by_path = {source.rel: source for source in project.files}
    active: list[Finding] = []
    suppressed = 0
    for finding in findings:
        source = by_path.get(finding.path)
        if (
            source is not None
            and source.pragmas is not None
            and finding.line
            and source.pragmas.suppresses(finding.rule, finding.line)
        ):
            suppressed += 1
            continue
        active.append(finding)

    # Pragma bookkeeping only makes sense when every rule ran: on a partial
    # run a pragma for an unselected rule would look unused.
    if not select:
        for source in project.files:
            if source.pragmas is not None:
                active.extend(pragma_findings(source.rel, source.pragmas, source.lines))

    active = fingerprint_findings(active)
    kept = [f for f in active if f.fingerprint not in baseline]
    grandfathered = [f for f in active if f.fingerprint in baseline]
    return Report(
        findings=kept,
        baselined=grandfathered,
        suppressed_count=suppressed,
        files_analyzed=len(project.files),
        rules_run=tuple(sorted(rules)),
    )
