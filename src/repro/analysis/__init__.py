"""Protocol-aware static analysis for the RingBFT reproduction.

An AST-based analyzer (stdlib only) enforcing the invariants this codebase's
hardest bugs violated: determinism of protocol paths, MAC coverage of every
message type, codec completeness of the wire-reachable type set, async
hygiene on the shared event loops, and lock/ordering discipline around the
audited acquisition machinery.

Entry points::

    ringbft lint                     # CLI (text or JSON, baseline-aware)
    repro.analysis.run_analysis(...) # library

Findings are suppressed per line with ``# repro: allow[rule-id] reason`` or
grandfathered in a baseline file (see :mod:`repro.analysis.baseline`).
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import Report, all_rules, known_rule_ids, run_analysis
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "Report",
    "all_rules",
    "known_rule_ids",
    "load_baseline",
    "render_json",
    "render_text",
    "run_analysis",
    "write_baseline",
]
