"""Per-line suppression pragmas: ``# repro: allow[rule-id] reason``.

A pragma suppresses findings of the named rule(s) on its own line or -- for
pragma-above style -- on the next non-blank, non-comment line.  The reason is
mandatory: an allowance without a recorded justification is itself reported
(rule ``pragma-syntax``), as is a pragma naming an unknown rule or one that
suppresses nothing (rule ``pragma-unused``) -- stale allowances must not
accumulate silently.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

#: Rule ids of the pragma machinery itself (not suppressible).
PRAGMA_SYNTAX = "pragma-syntax"
PRAGMA_UNUSED = "pragma-unused"

_PRAGMA_RE = re.compile(r"#\s*repro:\s*(?P<body>.*)$")
_ALLOW_RE = re.compile(r"^allow\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$", re.DOTALL)
_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9-]*$")


@dataclass
class Pragma:
    line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class PragmaIndex:
    """All well-formed pragmas of one file plus the pragma-level findings."""

    pragmas: list[Pragma] = field(default_factory=list)
    errors: list[tuple[int, str]] = field(default_factory=list)
    #: line -> pragmas applying to that line (own line and line-above style).
    _by_line: dict[int, list[Pragma]] = field(default_factory=dict)

    def suppresses(self, rule: str, line: int) -> bool:
        for pragma in self._by_line.get(line, ()):
            if rule in pragma.rules:
                pragma.used = True
                return True
        return False

    def unused(self) -> list[Pragma]:
        return [p for p in self.pragmas if not p.used]


def _comment_lines(source: str) -> list[tuple[int, str]]:
    """(line, comment-text) for every real comment token in ``source``."""
    comments: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The analyzer only runs on files that already parsed with ast; a
        # tokenize hiccup should not take the whole run down.
        pass
    return comments


def _code_lines(source: str) -> set[int]:
    """Lines carrying actual code (used to attach pragma-above comments)."""
    lines: set[int] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        stripped = text.strip()
        if stripped and not stripped.startswith("#"):
            lines.add(lineno)
    return lines


def parse_pragmas(source: str, known_rules: frozenset[str]) -> PragmaIndex:
    index = PragmaIndex()
    code_lines = _code_lines(source)
    max_line = source.count("\n") + 1
    for lineno, comment in _comment_lines(source):
        match = _PRAGMA_RE.search(comment)
        if match is None:
            continue
        body = match.group("body").strip()
        allow = _ALLOW_RE.match(body)
        if allow is None:
            index.errors.append(
                (lineno, f"malformed pragma {body!r}: expected 'allow[rule-id] reason'")
            )
            continue
        rules = tuple(part.strip() for part in allow.group("rules").split(",") if part.strip())
        reason = allow.group("reason").strip()
        bad = [r for r in rules if not _RULE_ID_RE.match(r)]
        unknown = [r for r in rules if _RULE_ID_RE.match(r) and r not in known_rules]
        if not rules or bad:
            index.errors.append((lineno, f"pragma names no valid rule ids: {body!r}"))
            continue
        if unknown:
            index.errors.append(
                (lineno, f"pragma names unknown rule(s) {', '.join(sorted(unknown))}")
            )
            continue
        if not reason:
            index.errors.append(
                (lineno, f"pragma allow[{', '.join(rules)}] has no reason; justify the allowance")
            )
            continue
        pragma = Pragma(line=lineno, rules=rules, reason=reason)
        index.pragmas.append(pragma)
        targets = [lineno]
        if lineno not in code_lines:
            # Comment-only line: the pragma covers the next code line.
            nxt = lineno + 1
            while nxt <= max_line and nxt not in code_lines:
                nxt += 1
            if nxt <= max_line:
                targets.append(nxt)
        for target in targets:
            index._by_line.setdefault(target, []).append(pragma)
    return index


def pragma_findings(path: str, index: PragmaIndex, lines: list[str]) -> list[Finding]:
    """Findings for malformed and unused pragmas in one file."""

    def snippet(lineno: int) -> str:
        return lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""

    findings = [
        Finding(rule=PRAGMA_SYNTAX, path=path, line=lineno, message=message,
                snippet=snippet(lineno))
        for lineno, message in index.errors
    ]
    findings.extend(
        Finding(
            rule=PRAGMA_UNUSED,
            path=path,
            line=pragma.line,
            message=(
                f"pragma allow[{', '.join(pragma.rules)}] suppresses nothing; "
                "remove it or fix the rule id"
            ),
            snippet=snippet(pragma.line),
        )
        for pragma in index.unused()
    )
    return findings
