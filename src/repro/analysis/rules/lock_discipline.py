"""Lock and cross-shard ordering discipline: new sites must be audited.

The PR-5 AHL deadlock was exactly this shape: a *second* code path started
proposing cross-shard batches outside the dense-index machinery, so two
replicas could interleave lock acquisitions in different orders.  The
deadlock-freedom argument (sequence-ordered acquisition, Theorem 6.2) only
covers the audited sites below; this rule flags any new one so it gets the
same review before it ships.

* **lock-site** -- calls to the :class:`~repro.storage.locks.LockManager`
  mutation API (``try_lock``/``release``/``fast_forward``/``skip_sequence``)
  anywhere outside the audited modules.

* **cross-order-site** -- access to AHL's dense-index proposal-ordering state
  (``_ready_cross``/``_next_cross_proposal``/``_cross_dest_counts``/
  ``_cross_order_stale``) outside the audited AHL replica module.

A legitimate new site is announced with a pragma, e.g.::

    acquired, unblocked = self.locks.try_lock(seq, token, keys)  # repro: allow[lock-site] audited: sequence-ordered via <proof>
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Project, Rule, SourceFile, SymbolVisitor, register_rule
from repro.analysis.findings import Finding

#: Modules whose lock-acquisition ordering has been audited against the
#: sequence-ordered-acquisition argument.
AUDITED_LOCK_MODULES = frozenset(
    {
        "repro.storage.locks",  # the manager itself
        "repro.consensus.pbft.replica",  # execution pipeline: ordered by sequence
    }
)

#: The lock-table mutation API.  Read-only accessors are fine anywhere.
LOCK_MUTATORS = frozenset({"try_lock", "release", "fast_forward", "skip_sequence"})

#: Modules allowed to touch AHL's dense-index proposal-ordering state.
AUDITED_CROSS_ORDER_MODULES = frozenset({"repro.baselines.ahl.replica"})

CROSS_ORDER_ATTRS = frozenset(
    {"_ready_cross", "_next_cross_proposal", "_cross_dest_counts", "_cross_order_stale"}
)


class _AttrCallVisitor(SymbolVisitor):
    def __init__(self, source: SourceFile) -> None:
        super().__init__()
        self.source = source
        self.lock_calls: list[tuple[ast.Call, str, str]] = []
        self.order_attrs: list[tuple[ast.Attribute, str, str]] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in LOCK_MUTATORS:
            self.lock_calls.append((node, func.attr, self.symbol))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in CROSS_ORDER_ATTRS:
            self.order_attrs.append((node, node.attr, self.symbol))
        self.generic_visit(node)


@register_rule
class LockSiteRule(Rule):
    id = "lock-site"
    title = "Lock-table mutations only in audited modules"
    rationale = (
        "Deadlock freedom rests on sequence-ordered acquisition; a lock "
        "mutation outside the audited execution pipeline needs the same "
        "ordering audit before it ships."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if source.module in AUDITED_LOCK_MODULES:
            return ()
        visitor = _AttrCallVisitor(source)
        visitor.visit(source.tree)
        return [
            source.finding(
                self.id,
                node,
                f".{attr}(...) is a lock-table mutation outside the audited "
                "modules; audit the acquisition order against the "
                "sequence-ordered locking argument, then allow it with a pragma",
                symbol,
            )
            for node, attr, symbol in visitor.lock_calls
        ]


@register_rule
class CrossOrderSiteRule(Rule):
    id = "cross-order-site"
    title = "Cross-shard proposal-ordering state only in the audited machinery"
    rationale = (
        "The PR-5 AHL deadlock came from a second proposal path bypassing the "
        "dense-index ordering; any new access to that state needs the same "
        "audit."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if source.module in AUDITED_CROSS_ORDER_MODULES:
            return ()
        visitor = _AttrCallVisitor(source)
        visitor.visit(source.tree)
        return [
            source.finding(
                self.id,
                node,
                f"access to {attr} outside the audited dense-index machinery; "
                "cross-shard proposal ordering must stay single-pathed "
                "(PR-5 deadlock shape)",
                symbol,
            )
            for node, attr, symbol in visitor.order_attrs
        ]
