"""Async hygiene: the event-loop packages must not stall or drop exceptions.

The realtime and socket backends multiplex every replica of a process on one
asyncio loop.  Two statically detectable hazards:

* **blocking-async** -- a synchronous blocking call (``time.sleep``, sync
  socket/subprocess ops) inside ``async def`` freezes every replica sharing
  the loop for its duration; under WAN emulation one stray sleep distorts all
  measured latencies.

* **orphan-task** -- ``create_task``/``ensure_future`` whose result is
  discarded is fire-and-forget: the task can be garbage-collected mid-flight
  and its exception is reported only as "exception was never retrieved" at
  interpreter exit, long after the run that lost a message.  Keep a reference
  and attach an exception sink (``add_done_callback`` or an awaited
  gather/wait).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    Project,
    Rule,
    SourceFile,
    build_import_table,
    register_rule,
    resolve_call_target,
)
from repro.analysis.findings import Finding

#: Packages whose code runs on (or next to) the shared asyncio loops.
ASYNC_SCOPE = ("repro.rt", "repro.net", "repro.engine")

_BLOCKING = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "select.select",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.waitpid",
        "urllib.request.urlopen",
    }
)

_SPAWNERS = ("create_task", "ensure_future")


def _in_scope(source: SourceFile) -> bool:
    return any(
        source.module == p or source.module.startswith(p + ".") for p in ASYNC_SCOPE
    )


class _AsyncVisitor(ast.NodeVisitor):
    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.imports = build_import_table(source.tree)
        self.blocking: list[Finding] = []
        self.orphans: list[Finding] = []
        self._symbols: list[str] = []
        self._async_depth = 0

    @property
    def symbol(self) -> str:
        return ".".join(self._symbols)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._symbols.append(node.name)
        self.generic_visit(node)
        self._symbols.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A sync def nested in an async def runs synchronously when called
        # from the coroutine, but flagging it would also flag callbacks that
        # run outside the loop; keep the rule scoped to coroutine bodies.
        self._symbols.append(node.name)
        depth, self._async_depth = self._async_depth, 0
        self.generic_visit(node)
        self._async_depth = depth
        self._symbols.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._symbols.append(node.name)
        self._async_depth += 1
        self.generic_visit(node)
        self._async_depth -= 1
        self._symbols.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self._async_depth > 0:
            target = resolve_call_target(node.func, self.imports)
            if target in _BLOCKING:
                self.blocking.append(
                    self.source.finding(
                        "blocking-async",
                        node,
                        f"blocking call {target}() inside 'async def {self._symbols[-1]}' "
                        "stalls every replica sharing the event loop; use the "
                        "awaitable equivalent",
                        self.symbol,
                    )
                )
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute) \
                and value.func.attr in _SPAWNERS:
            self.orphans.append(
                self.source.finding(
                    "orphan-task",
                    node,
                    f"fire-and-forget {value.func.attr}(...): the task can be "
                    "garbage-collected mid-flight and its exception is never "
                    "retrieved; keep a reference and attach an exception sink",
                    self.symbol,
                )
            )
        elif isinstance(value, ast.Call):
            target = resolve_call_target(value.func, self.imports)
            if target in (f"asyncio.{name}" for name in _SPAWNERS):
                self.orphans.append(
                    self.source.finding(
                        "orphan-task",
                        node,
                        "fire-and-forget asyncio task: keep a reference and attach "
                        "an exception sink",
                        self.symbol,
                    )
                )
        self.generic_visit(node)


@register_rule
class BlockingAsyncRule(Rule):
    id = "blocking-async"
    title = "No synchronous blocking calls inside async def"
    rationale = (
        "One replica blocking the loop blocks every co-scheduled replica and "
        "timer; latency measurements and liveness both degrade invisibly."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not _in_scope(source):
            return ()
        visitor = _AsyncVisitor(source)
        visitor.visit(source.tree)
        return visitor.blocking


@register_rule
class OrphanTaskRule(Rule):
    id = "orphan-task"
    title = "No fire-and-forget create_task/ensure_future"
    rationale = (
        "An unreferenced task is collectable mid-flight and its exception "
        "surfaces only at interpreter exit; every spawned task needs an owner "
        "and an exception sink."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not _in_scope(source):
            return ()
        visitor = _AsyncVisitor(source)
        visitor.visit(source.tree)
        return visitor.orphans
