"""Codec completeness: the wire-reachable type set is closed and tested.

Two obligations:

* **codec-registered** -- every frozen dataclass (or enum) reachable from a
  wire message through field annotations must carry ``@register_wire_type``;
  otherwise the socket backend cannot decode it and the sim/socket parity
  breaks the first time the type rides inside an envelope.

* **layout-identity-test** -- every ``codec.compile_fixed_dict`` layout is a
  hand-scheduled encoder that *must* stay byte-identical to the generic
  walker; each one needs a test asserting that identity.  The rule accepts as
  evidence a test file that names the layout constant directly, or one that
  names a consuming class and contains an identity assertion of the canonical
  shape ``<accessor>() == [codec.]encode_canonical(...)`` where the accessor
  is one of ``payload_bytes``/``packed_bytes``/``signed_payload``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import Project, Rule, SourceFile, register_rule
from repro.analysis.findings import Finding
from repro.analysis.rules._classgraph import build_class_graph


@register_rule
class CodecRegisteredRule(Rule):
    id = "codec-registered"
    title = "Wire-reachable dataclasses and enums are codec-registered"
    rationale = (
        "decode_canonical rebuilds dataclasses and enums via the wire-type "
        "registry; an unregistered type nested in a message decodes as an "
        "error on the socket backend only, which no in-process test catches."
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = build_class_graph(project)
        roots = set(graph.subclasses_of("Message"))
        findings: list[Finding] = []
        for name, info in sorted(graph.reachable_from(roots).items()):
            if not (info.frozen_dataclass or info.is_enum):
                continue
            if "register_wire_type" in info.decorators:
                continue
            findings.append(
                info.source.finding(
                    self.id,
                    info.node,
                    f"{name} is reachable from a wire message but not "
                    "@register_wire_type-decorated; the socket backend cannot "
                    "decode it",
                    symbol=name,
                )
            )
        return findings


def _layout_assignments(source: SourceFile) -> list[tuple[str, ast.Assign]]:
    out: list[tuple[str, ast.Assign]] = []
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name != "compile_fixed_dict":
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                out.append((target.id, node))
    return out


def _line_range_index(source: SourceFile) -> list[tuple[str, int, int]]:
    """(class name, first line, last line) for every top-level class."""
    ranges = []
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef):
            ranges.append((node.name, node.lineno, node.end_lineno or node.lineno))
    return ranges


def _consumers(source: SourceFile, layout_name: str) -> set[str]:
    """Class names whose bodies mention ``layout_name``, directly or through
    one level of module-level helper function indirection."""
    mention_lines = [
        lineno
        for lineno, text in enumerate(source.lines, start=1)
        if layout_name in text
    ]
    class_ranges = _line_range_index(source)

    def classes_mentioning(token: str) -> set[str]:
        hits = set()
        for name, start, end in class_ranges:
            if any(token in source.lines[i] for i in range(start - 1, end)):
                hits.add(name)
        return hits

    direct = set()
    for name, start, end in class_ranges:
        if any(start <= line <= end for line in mention_lines):
            direct.add(name)
    if direct:
        return direct
    # Indirection: a module-level function references the layout; classes
    # referencing that function are the consumers (e.g. the shared
    # signed-payload helper behind Commit and CommitCertificate).
    helpers = {
        node.name
        for node in source.tree.body
        if isinstance(node, ast.FunctionDef)
        and any(
            node.lineno <= line <= (node.end_lineno or node.lineno)
            for line in mention_lines
        )
    }
    consumers: set[str] = set()
    for helper in helpers:
        consumers |= classes_mentioning(helper)
    return consumers


@register_rule
class LayoutIdentityTestRule(Rule):
    id = "layout-identity-test"
    title = "Every compile_fixed_dict layout has a byte-identity test"
    rationale = (
        "A compiled layout that drifts from encode_canonical silently changes "
        "digests and MACs for fast-path encoders only; each layout needs a "
        "test pinning byte identity with the generic walker."
    )

    #: The canonical identity-assert shape the vote-codec tests established.
    _IDENTITY_ASSERT = re.compile(
        r"\.(payload_bytes|packed_bytes|signed_payload)\(\)\s*==\s*"
        r"(codec\.)?encode_canonical\("
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        texts = project.test_texts.values()
        identity_texts = [text for text in texts if self._IDENTITY_ASSERT.search(text)]
        for source in project.files:
            for layout_name, node in _layout_assignments(source):
                if any(layout_name in text for text in texts):
                    continue
                consumers = _consumers(source, layout_name)
                if consumers and any(
                    any(re.search(rf"\b{re.escape(name)}\b", text) for name in consumers)
                    for text in identity_texts
                ):
                    continue
                hint = (
                    f"consumers: {', '.join(sorted(consumers))}" if consumers
                    else "no consuming class found"
                )
                findings.append(
                    source.finding(
                        self.id,
                        node,
                        f"layout {layout_name} has no byte-identity test against "
                        f"encode_canonical ({hint}); add one or the packed fast "
                        "path can drift from the generic wire format",
                        symbol=layout_name,
                    )
                )
        return findings
