"""Determinism rules: no nondeterminism sources inside protocol paths.

The pipeline k=1 byte-identical-chain gate and every replay/parity test in
this repo depend on protocol decisions being pure functions of (config, seed,
message order).  Three leak classes are statically detectable:

* **wall-clock** -- ``time.time()``/``datetime.now()`` readings differ per
  host and per run; protocol code must take time from the scheduler/kernel.
* **global-rng / os-entropy** -- the module-level ``random`` functions share
  one process-global generator (seeded from the OS by default) and
  ``os.urandom``/``secrets``/``uuid4`` are entropy by definition; protocol
  code must draw from an explicitly seeded ``random.Random`` instance.
* **unordered-iteration** -- iterating a ``set``/``frozenset`` enumerates in
  hash order, which for strings depends on the per-process hash seed
  (``PYTHONHASHSEED``): two replicas iterating "the same" set can disagree.
  Dict iteration is exempt -- insertion order is deterministic when the
  insertions are.  Wrap set iteration in ``sorted(...)``.

Scope: the packages that make protocol decisions (``repro.consensus``,
``repro.txn``, ``repro.sim``, ``repro.common``, plus the protocol subclasses
in ``repro.core`` and ``repro.baselines``).  Driver/CLI/benchmark code may
read the wall clock freely.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import (
    Project,
    Rule,
    SourceFile,
    SymbolVisitor,
    build_import_table,
    register_rule,
    resolve_call_target,
)
from repro.analysis.findings import Finding

#: Dotted module prefixes the determinism rules apply to.
PROTOCOL_SCOPE = (
    "repro.consensus",
    "repro.txn",
    "repro.sim",
    "repro.common",
    "repro.core",
    "repro.baselines",
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.thread_time",
        "time.thread_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``random.Random`` (and ``Random`` imported from random) constructs an
#: explicitly seeded generator -- that is the sanctioned pattern, not a leak.
_GLOBAL_RNG_OK = frozenset({"random.Random"})

_OS_ENTROPY = frozenset(
    {
        "os.urandom",
        "random.SystemRandom",
        "uuid.uuid4",
        "uuid.uuid1",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)


def _in_scope(source: SourceFile) -> bool:
    return any(
        source.module == p or source.module.startswith(p + ".") for p in PROTOCOL_SCOPE
    )


def _is_set_expression(node: ast.expr, imports: dict[str, str]) -> bool:
    """Syntactically a set: display, comprehension, or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = resolve_call_target(node.func, imports)
        return target in ("set", "frozenset")
    return False


class _DeterminismVisitor(SymbolVisitor):
    def __init__(self, rule_id: str, source: SourceFile, targets: frozenset[str],
                 message: str, allowed: frozenset[str] = frozenset()) -> None:
        super().__init__()
        self.rule_id = rule_id
        self.source = source
        self.imports = build_import_table(source.tree)
        self.targets = targets
        self.allowed = allowed
        self.message = message
        self.findings: list[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        target = resolve_call_target(node.func, self.imports)
        if target is not None and target in self.targets and target not in self.allowed:
            self.findings.append(
                self.source.finding(
                    self.rule_id, node, self.message.format(target=target), self.symbol
                )
            )
        self.generic_visit(node)


@register_rule
class WallClockRule(Rule):
    id = "wall-clock"
    title = "No wall-clock readings in protocol paths"
    rationale = (
        "Protocol decisions must be a function of scheduler time, not host "
        "time; wall-clock reads break replay determinism and cross-replica "
        "agreement on timeouts."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not _in_scope(source):
            return ()
        visitor = _DeterminismVisitor(
            self.id, source, _WALL_CLOCK,
            "wall-clock read {target}() in a protocol path; take time from the "
            "scheduler/kernel instead",
        )
        visitor.visit(source.tree)
        return visitor.findings


@register_rule
class GlobalRngRule(Rule):
    id = "global-rng"
    title = "No process-global random module calls in protocol paths"
    rationale = (
        "The module-level random functions share one OS-seeded global "
        "generator; protocol randomness must come from an explicitly seeded "
        "random.Random threaded through the call graph."
    )

    #: Every public callable of the global generator, resolved post-import.
    _TARGETS = frozenset(
        {
            "random.random",
            "random.randint",
            "random.randrange",
            "random.choice",
            "random.choices",
            "random.sample",
            "random.shuffle",
            "random.uniform",
            "random.expovariate",
            "random.gauss",
            "random.normalvariate",
            "random.seed",
            "random.getrandbits",
            "random.betavariate",
            "random.triangular",
            "random.vonmisesvariate",
            "random.paretovariate",
            "random.weibullvariate",
            "random.lognormvariate",
            "random.gammavariate",
        }
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not _in_scope(source):
            return ()
        visitor = _DeterminismVisitor(
            self.id, source, self._TARGETS,
            "process-global {target}() in a protocol path; draw from a seeded "
            "random.Random instance",
            allowed=_GLOBAL_RNG_OK,
        )
        visitor.visit(source.tree)
        return visitor.findings


@register_rule
class OsEntropyRule(Rule):
    id = "os-entropy"
    title = "No OS entropy sources in protocol paths"
    rationale = (
        "os.urandom/secrets/uuid4 are nondeterministic by design; protocol "
        "identifiers and nonces must derive from seeded state so replicas "
        "and replays agree."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not _in_scope(source):
            return ()
        visitor = _DeterminismVisitor(
            self.id, source, _OS_ENTROPY,
            "OS entropy source {target}() in a protocol path; derive from "
            "seeded state instead",
        )
        visitor.visit(source.tree)
        return visitor.findings


class _SetIterationVisitor(SymbolVisitor):
    def __init__(self, rule_id: str, source: SourceFile) -> None:
        super().__init__()
        self.rule_id = rule_id
        self.source = source
        self.imports = build_import_table(source.tree)
        self.findings: list[Finding] = []

    def _flag(self, node: ast.expr) -> None:
        if _is_set_expression(node, self.imports):
            self.findings.append(
                self.source.finding(
                    self.rule_id,
                    node,
                    "iteration over a set enumerates in hash order (varies with "
                    "PYTHONHASHSEED); wrap it in sorted(...)",
                    self.symbol,
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._flag(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        # list(set(...)) / tuple(set(...)) / "".join(set(...)) materialise the
        # hash order just as directly as a for-loop over it.
        target = resolve_call_target(node.func, self.imports)
        materialisers = ("list", "tuple", "enumerate", "iter", "next")
        if (target in materialisers or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "join"
        )) and node.args:
            self._flag(node.args[0])
        self.generic_visit(node)


@register_rule
class UnorderedIterationRule(Rule):
    id = "unordered-iteration"
    title = "No hash-order set iteration in protocol paths"
    rationale = (
        "Set iteration order depends on the per-process string hash seed, so "
        "two replicas iterating equal sets can process elements in different "
        "orders; protocol paths must sort before iterating."
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not _in_scope(source):
            return ()
        visitor = _SetIterationVisitor(self.id, source)
        visitor.visit(source.tree)
        return visitor.findings
