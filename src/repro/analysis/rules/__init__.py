"""Rule families: importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401  (registration side effects)
    async_hygiene,
    codec_completeness,
    determinism,
    lock_discipline,
    mac_coverage,
)
