"""MAC coverage: every Message subclass must be authentication-covered.

The PR-3 bug class: a replica-to-replica broadcast type that no replica lists
in ``_MAC_REQUIRED_TYPES`` can be delivered *without* a MAC tag -- the
verification gate waves it through, so a Byzantine peer can forge the sender
field.  This rule makes the closed-world assumption explicit: every class
deriving from :class:`repro.common.messages.Message` must either

* appear in some ``_MAC_REQUIRED_TYPES`` tuple (mandatory pairwise MACs), or
* be listed in :data:`SIGNED_OR_CLIENT_TYPES` with the reason its integrity
  comes from another mechanism (client signatures, client-directed traffic).

Adding a new Message subclass without deciding its authentication story is a
build failure, not a silent gap.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Project, Rule, register_rule
from repro.analysis.findings import Finding
from repro.analysis.rules._classgraph import build_class_graph

#: Message types whose authentication is *not* the pairwise-MAC vector, with
#: the reason.  Extend this table deliberately -- every entry is an audited
#: trust decision, not a convenience.
SIGNED_OR_CLIENT_TYPES: dict[str, str] = {
    # Integrity and origin come from the client's signature over the
    # transaction; replicas verify it at admission.
    "ClientRequest": "client-signed at admission",
    # Client-directed traffic: the client counts f+1 *matching* replies, so a
    # single forged reply cannot change the accepted outcome.
    "ClientResponse": "client counts f+1 matching replies",
}

_REGISTRY_NAME = "_MAC_REQUIRED_TYPES"


def _covered_names(project: Project) -> set[str]:
    """Every class name appearing in any ``_MAC_REQUIRED_TYPES`` assignment."""
    covered: set[str] = set()
    for source in project.files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if _REGISTRY_NAME not in targets:
                continue
            for child in ast.walk(node.value):
                if isinstance(child, ast.Name):
                    covered.add(child.id)
                elif isinstance(child, ast.Attribute):
                    covered.add(child.attr)
    return covered


@register_rule
class MacCoverageRule(Rule):
    id = "mac-coverage"
    title = "Every Message subclass is MAC-required or explicitly whitelisted"
    rationale = (
        "A broadcast type absent from every _MAC_REQUIRED_TYPES tuple can be "
        "delivered untagged, so its sender field is forgeable; new message "
        "types must opt into an authentication mechanism explicitly."
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = build_class_graph(project)
        covered = _covered_names(project)
        findings: list[Finding] = []
        for name, info in sorted(graph.subclasses_of("Message").items()):
            if name in covered or name in SIGNED_OR_CLIENT_TYPES:
                continue
            findings.append(
                info.source.finding(
                    self.id,
                    info.node,
                    f"Message subclass {name} is in no _MAC_REQUIRED_TYPES tuple "
                    "and not in the signed/client whitelist; decide its "
                    "authentication story (see repro.analysis.rules.mac_coverage)",
                    symbol=name,
                )
            )
        return findings
