"""Shared cross-file class-graph model for the protocol-invariant rules.

MAC coverage and codec completeness both need a project-wide view of class
definitions: who subclasses ``Message``, which classes carry which decorators,
and which class names a class's field annotations mention.  Class names are
treated as globally unique -- the codec's wire-type registry enforces exactly
that for everything on the wire, and the rules only reason about those.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.core import Project, SourceFile


def _tail_name(node: ast.expr) -> str | None:
    """The terminal identifier of a Name/Attribute chain (``a.b.C`` -> ``C``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _decorator_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _tail_name(target)
        if name:
            names.add(name)
    return names


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call) and _tail_name(decorator.func) == "dataclass":
            for keyword in decorator.keywords:
                if keyword.arg == "frozen" and isinstance(keyword.value, ast.Constant):
                    return bool(keyword.value.value)
    return False


def _annotation_names(node: ast.expr) -> set[str]:
    """Every bare identifier mentioned in a type annotation expression."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            # String annotations ("Transaction") parse as expressions too.
            try:
                names |= _annotation_names(ast.parse(child.value, mode="eval").body)
            except SyntaxError:
                pass
    return names


@dataclass
class ClassInfo:
    name: str
    source: SourceFile
    node: ast.ClassDef
    bases: set[str] = field(default_factory=set)
    decorators: set[str] = field(default_factory=set)
    frozen_dataclass: bool = False
    is_enum: bool = False
    #: Class names mentioned in field annotations (the reachability edges).
    field_type_names: set[str] = field(default_factory=set)


@dataclass
class ClassGraph:
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def subclasses_of(self, root: str) -> dict[str, ClassInfo]:
        """Transitive subclasses of ``root`` (excluding ``root`` itself)."""
        out: dict[str, ClassInfo] = {}
        frontier = {root}
        while frontier:
            frontier = {
                name
                for name, info in self.classes.items()
                if name not in out and name != root and info.bases & (frontier | {root})
            }
            for name in frontier:
                out[name] = self.classes[name]
        return out

    def reachable_from(self, roots: set[str]) -> dict[str, ClassInfo]:
        """Classes reachable from ``roots`` through field-annotation edges."""
        out: dict[str, ClassInfo] = {}
        frontier = [name for name in roots if name in self.classes]
        while frontier:
            name = frontier.pop()
            if name in out:
                continue
            info = self.classes[name]
            out[name] = info
            frontier.extend(t for t in info.field_type_names if t in self.classes)
        return out


def build_class_graph(project: Project) -> ClassGraph:
    graph = ClassGraph()
    for source in project.files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {name for base in node.bases if (name := _tail_name(base))}
            annotations: set[str] = set()
            for statement in node.body:
                if isinstance(statement, ast.AnnAssign):
                    annotations |= _annotation_names(statement.annotation)
            info = ClassInfo(
                name=node.name,
                source=source,
                node=node,
                bases=bases,
                decorators=_decorator_names(node),
                frozen_dataclass=_is_frozen_dataclass(node),
                is_enum="Enum" in bases or "enum" in bases,
                field_type_names=annotations,
            )
            # First definition wins; duplicate class names across the tree are
            # possible for private helpers but irrelevant to the wire rules.
            graph.classes.setdefault(node.name, info)
    return graph
