"""Finding objects and their stable fingerprints.

A finding's *fingerprint* identifies it across unrelated edits: it hashes the
rule, the file, the enclosing symbol, and the offending source line -- but
never the line *number*, so inserting a docstring above a grandfathered
finding does not invalidate the baseline.  Identical (rule, file, symbol,
line-text) tuples are disambiguated by an occurrence index, assigned in file
order by :func:`fingerprint_findings`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterable


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    #: Repo-relative POSIX path of the offending file.
    path: str
    #: 1-based line of the offending node (0 for whole-file findings).
    line: int
    message: str
    #: Enclosing class/function qualname, when the rule tracks one.
    symbol: str = ""
    #: The offending source line, stripped (empty for project-level findings).
    snippet: str = ""
    #: Stable identity for baselines; assigned by :func:`fingerprint_findings`.
    fingerprint: str = field(default="", compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}" if self.line else self.path

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


def _raw_fingerprint(finding: Finding, occurrence: int) -> str:
    basis = "\x1f".join(
        (finding.rule, finding.path, finding.symbol, finding.snippet, str(occurrence))
    )
    return hashlib.sha256(basis.encode()).hexdigest()[:16]


def fingerprint_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Assign line-number-independent fingerprints, in deterministic order."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
    seen: dict[tuple[str, str, str, str], int] = {}
    out: list[Finding] = []
    for finding in ordered:
        key = (finding.rule, finding.path, finding.symbol, finding.snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(replace(finding, fingerprint=_raw_fingerprint(finding, occurrence)))
    return out
