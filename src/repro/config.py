"""Deployment, workload, and timer configuration.

The standard settings mirror Section 8 of the paper: 15 shards mapped to 15
GCP regions, 28 replicas per shard (420 replicas total), batches of 100
transactions, 30% cross-shard transactions each touching all involved
regions, and up to 50K open-loop clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.quorum import QuorumSpec, max_faulty
from repro.errors import ConfigurationError
from repro.txn.ring import RingTopology

#: The fifteen GCP regions used in the paper's deployment, in the order the
#: paper lists them (experiments with fewer shards use a prefix of this list).
GCP_REGIONS: tuple[str, ...] = (
    "oregon",
    "iowa",
    "montreal",
    "netherlands",
    "taiwan",
    "sydney",
    "singapore",
    "south-carolina",
    "north-virginia",
    "los-angeles",
    "las-vegas",
    "london",
    "belgium",
    "tokyo",
    "hong-kong",
)


@dataclass(frozen=True)
class ShardConfig:
    """Configuration of a single shard."""

    shard_id: int
    num_replicas: int
    region: str = "local"

    def __post_init__(self) -> None:
        if self.num_replicas < 4:
            raise ConfigurationError(
                f"shard {self.shard_id} needs at least 4 replicas to tolerate one fault, "
                f"got {self.num_replicas}"
            )

    @property
    def quorum(self) -> QuorumSpec:
        return QuorumSpec.for_replicas(self.num_replicas)

    @property
    def max_faulty(self) -> int:
        return max_faulty(self.num_replicas)


@dataclass(frozen=True)
class TimerConfig:
    """Timeout durations (seconds) for the three RingBFT timers (Section 5).

    The paper requires ``local < remote < transmit`` so that a local
    view-change fires before remote machinery and retransmission is the last
    resort.
    """

    local_timeout: float = 2.0
    remote_timeout: float = 4.0
    transmit_timeout: float = 6.0
    client_timeout: float = 8.0
    checkpoint_interval: int = 100
    #: How many times the transmit timer re-sends one record's Forward message
    #: before giving up (a permanently dead next shard must not spin the timer
    #: forever).  Generous by default: the rotation survives long outages.
    max_forward_retransmissions: int = 50

    def __post_init__(self) -> None:
        if not self.local_timeout < self.remote_timeout < self.transmit_timeout:
            raise ConfigurationError(
                "timer ordering must satisfy local < remote < transmit, got "
                f"{self.local_timeout} / {self.remote_timeout} / {self.transmit_timeout}"
            )
        if self.checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint_interval must be positive")
        if self.max_forward_retransmissions <= 0:
            raise ConfigurationError("max_forward_retransmissions must be positive")


@dataclass(frozen=True)
class WorkloadConfig:
    """YCSB-style workload parameters (Section 8, *Benchmark* and *Standard Settings*)."""

    num_records: int = 600_000
    cross_shard_fraction: float = 0.30
    involved_shards: int = 0  # 0 means "all shards", the paper's standard setting
    remote_reads: int = 0
    zipf_theta: float = 0.0  # 0.0 = uniform access
    num_clients: int = 50_000
    batch_size: int = 100
    seed: int = 2022

    def __post_init__(self) -> None:
        if not 0.0 <= self.cross_shard_fraction <= 1.0:
            raise ConfigurationError("cross_shard_fraction must be within [0, 1]")
        if self.num_records <= 0:
            raise ConfigurationError("num_records must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        if self.remote_reads < 0:
            raise ConfigurationError("remote_reads cannot be negative")
        if self.zipf_theta < 0:
            raise ConfigurationError("zipf_theta cannot be negative")


@dataclass(frozen=True)
class PipelineConfig:
    """Proposal pipelining for the intra-shard PBFT primary.

    PBFT allows a primary to run consensus on several sequence numbers
    concurrently below the high watermark; ``depth`` is the size of that
    proposal window (k).  ``depth=1`` reproduces the classic one-batch-at-a-
    time behaviour exactly (same seeds -> same block chains).  With a deeper
    window the primary sizes batches *adaptively* from the pending-queue
    depth: light load ships small batches immediately (low latency), heavy
    load packs batches up to the replica's batch size (amortised MAC/encode
    cost), and the trailing timer flush uses the same sizing so it cannot
    emit one-request crumbs while the queue is deep.
    """

    depth: int = 1
    #: Smallest batch the adaptive sizing will propose (>= 1).
    min_batch_size: int = 1
    #: Largest batch the adaptive sizing will propose; 0 means "use the
    #: replica's configured batch size".
    max_batch_size: int = 0
    #: How long a staged request may wait for its batch to fill before the
    #: flush timer forces it out (seconds; pipelined primaries only --
    #: depth=1 keeps the legacy BATCH_FLUSH_DELAY).
    target_queue_delay: float = 0.05
    #: EWMA smoothing factor for the slot-occupancy controller's commit
    #: latency and arrival-rate estimates (0 < alpha <= 1).
    ewma_alpha: float = 0.2
    #: Seed value for the commit-latency EWMA before the first measured
    #: sample (seconds) -- a deterministic prior, never a host reading.
    latency_prior_s: float = 0.005
    #: In-flight demand (``arrival_rate * commit_latency``, in busy slots) at
    #: which the rate-shaped pump engages; below it the pump degrades to the
    #: proven eager behaviour (ship immediately when the window is idle).
    sustain_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ConfigurationError("pipeline depth must be at least 1")
        if self.min_batch_size < 1:
            raise ConfigurationError("min_batch_size must be at least 1")
        if self.max_batch_size < 0:
            raise ConfigurationError("max_batch_size cannot be negative")
        if self.max_batch_size and self.max_batch_size < self.min_batch_size:
            raise ConfigurationError(
                f"max_batch_size {self.max_batch_size} must be >= "
                f"min_batch_size {self.min_batch_size}"
            )
        if self.target_queue_delay <= 0:
            raise ConfigurationError("target_queue_delay must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if self.latency_prior_s <= 0:
            raise ConfigurationError("latency_prior_s must be positive")
        if self.sustain_threshold <= 0:
            raise ConfigurationError("sustain_threshold must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """Full description of a sharded deployment."""

    shards: tuple[ShardConfig, ...]
    timers: TimerConfig = field(default_factory=TimerConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    ring_order: tuple[int, ...] | None = None
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)

    def __post_init__(self) -> None:
        if not self.shards:
            raise ConfigurationError("a deployment needs at least one shard")
        ids = [s.shard_id for s in self.shards]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate shard identifiers: {ids}")
        if self.ring_order is not None and set(self.ring_order) != set(ids):
            raise ConfigurationError(
                f"ring_order {self.ring_order} must be a permutation of the shard ids {ids}"
            )

    @classmethod
    def uniform(
        cls,
        num_shards: int,
        replicas_per_shard: int,
        *,
        timers: TimerConfig | None = None,
        workload: WorkloadConfig | None = None,
        regions: tuple[str, ...] = GCP_REGIONS,
        pipeline: PipelineConfig | None = None,
    ) -> "SystemConfig":
        """Build a deployment of ``num_shards`` equal shards, one per region."""
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        shards = tuple(
            ShardConfig(
                shard_id=i,
                num_replicas=replicas_per_shard,
                region=regions[i % len(regions)],
            )
            for i in range(num_shards)
        )
        return cls(
            shards=shards,
            timers=timers or TimerConfig(),
            workload=workload or WorkloadConfig(),
            pipeline=pipeline or PipelineConfig(),
        )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def total_replicas(self) -> int:
        return sum(s.num_replicas for s in self.shards)

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(s.shard_id for s in self.shards)

    def shard(self, shard_id: int) -> ShardConfig:
        for s in self.shards:
            if s.shard_id == shard_id:
                return s
        raise ConfigurationError(f"unknown shard {shard_id}")

    def ring(self) -> RingTopology:
        """The ring topology used to route cross-shard transactions."""
        if self.ring_order is not None:
            return RingTopology(self.ring_order)
        return RingTopology.ascending(self.shard_ids)
