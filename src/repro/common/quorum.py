"""Quorum arithmetic for the sharded fault model (Section 3).

Each shard tolerates ``f`` Byzantine replicas out of ``n >= 3f + 1``.  The
protocol phases rely on three thresholds:

* ``nf = n - f`` identical Prepare/Commit messages prove a majority of
  non-faulty replicas support a proposal (quorum intersection argument of
  Proposition 6.1);
* ``f + 1`` identical messages prove at least one non-faulty replica sent the
  message (used for client responses, Forward acceptance, RemoteView);
* ``2f + 1`` appears in classic PBFT formulations; with ``n = 3f + 1`` it is
  the same as ``nf`` and the code always goes through ``nf``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuorumError


def max_faulty(n: int) -> int:
    """Largest ``f`` a shard of ``n`` replicas can tolerate (``n >= 3f + 1``)."""
    if n < 1:
        raise QuorumError(f"a shard needs at least one replica, got {n}")
    return (n - 1) // 3


@dataclass(frozen=True)
class QuorumSpec:
    """Quorum thresholds for one shard of ``n`` replicas tolerating ``f`` faults."""

    n: int
    f: int

    def __post_init__(self) -> None:
        if self.n < 3 * self.f + 1:
            raise QuorumError(
                f"n={self.n} cannot tolerate f={self.f} Byzantine replicas (need n >= 3f + 1)"
            )
        if self.f < 0:
            raise QuorumError("f cannot be negative")

    @classmethod
    def for_replicas(cls, n: int) -> "QuorumSpec":
        """Build a spec tolerating the maximum number of faults for ``n``."""
        return cls(n=n, f=max_faulty(n))

    @property
    def nf(self) -> int:
        """Number of non-faulty replicas; also the commit-quorum size."""
        return self.n - self.f

    @property
    def commit_quorum(self) -> int:
        """Identical messages needed to mark a proposal prepared/committed."""
        return self.nf

    @property
    def weak_quorum(self) -> int:
        """Messages guaranteeing at least one non-faulty sender (``f + 1``)."""
        return self.f + 1

    @property
    def view_change_quorum(self) -> int:
        """ViewChange messages a new primary must collect to install a view."""
        return self.nf

    def intersects(self, other_quorum_size: int) -> bool:
        """True when any two quorums of the given sizes must share a non-faulty replica."""
        return self.commit_quorum + other_quorum_size - self.n > self.f
