"""Shared substrates: identifiers, cryptography, Merkle trees, quorums, messages."""

from repro.common.types import ClientId, ReplicaId, ShardId, SeqNum, ViewNum
from repro.common.quorum import QuorumSpec

__all__ = [
    "ClientId",
    "ReplicaId",
    "ShardId",
    "SeqNum",
    "ViewNum",
    "QuorumSpec",
]
