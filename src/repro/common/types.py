"""Core identifier types used across every subsystem.

The paper's notation (Section 3) is mapped onto explicit Python types:

* a *shard* ``S`` has a ring identifier ``id(S)`` -- :class:`ShardId`;
* a *replica* ``r`` belongs to a shard and has a local index ``id(r)`` used by
  the linear communication primitive -- :class:`ReplicaId`;
* clients are globally identified -- :class:`ClientId`;
* consensus sequence numbers ``k`` and views are plain integers wrapped in
  ``NewType`` aliases so signatures stay self-documenting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NewType

from repro.common.codec import register_wire_type

ShardId = NewType("ShardId", int)
ClientId = NewType("ClientId", str)
SeqNum = NewType("SeqNum", int)
ViewNum = NewType("ViewNum", int)


@register_wire_type
@dataclass(frozen=True, order=True)
class ReplicaId:
    """Globally unique replica identity.

    ``shard`` is the ring identifier of the shard the replica belongs to and
    ``index`` is the replica's position inside its shard (``0..n-1``).  The
    linear communication primitive pairs replicas of neighbouring shards that
    share the same ``index``.
    """

    shard: int
    index: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"r{self.index}@S{self.shard}"

    @property
    def is_primary_candidate(self) -> bool:
        """Whether this replica is the default (view 0) primary of its shard."""
        return self.index == 0


def primary_index(view: int, num_replicas: int) -> int:
    """Return the replica index acting as primary in ``view``.

    PBFT rotates the primary round-robin over the replica indices, so the
    primary of view ``v`` in a shard of ``n`` replicas is ``v mod n``.
    """
    if num_replicas <= 0:
        raise ValueError("num_replicas must be positive")
    return view % num_replicas


@dataclass(frozen=True)
class DataItem:
    """A single data item (YCSB record key) owned by exactly one shard."""

    shard: int
    key: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.key}@S{self.shard}"
