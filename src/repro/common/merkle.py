"""Merkle tree used to compute per-block transaction roots (Section 7).

Each block in a shard's partial blockchain stores either the full batch of
transactions or only their Merkle root; the root is computed by pair-wise
hashing leaf digests up to a single root.  Inclusion proofs allow light
verification that a transaction belongs to a committed block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.crypto import sha256
from repro.errors import LedgerError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return sha256(_LEAF_PREFIX + data)


def _hash_node(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf.

    ``path`` holds ``(sibling_digest, sibling_is_right)`` pairs from the leaf
    up to the root.
    """

    leaf_index: int
    path: tuple[tuple[bytes, bool], ...]


class MerkleTree:
    """A static Merkle tree over an ordered list of byte-string leaves.

    Odd nodes at any level are promoted unchanged (Bitcoin-style duplication
    is avoided so that a single-leaf tree has root == hash(leaf)).
    """

    def __init__(self, leaves: list[bytes] | tuple[bytes, ...]) -> None:
        if not leaves:
            raise LedgerError("cannot build a Merkle tree over zero leaves")
        # Leaves on the hot path are memoised digests shared across replicas;
        # copying them per tree would defeat the sharing, so only coerce
        # non-bytes inputs (bytearray/memoryview from tests and tools).
        self._leaves = [leaf if type(leaf) is bytes else bytes(leaf) for leaf in leaves]
        self._levels: list[list[bytes]] = [[_hash_leaf(leaf) for leaf in self._leaves]]
        while len(self._levels[-1]) > 1:
            current = self._levels[-1]
            nxt: list[bytes] = []
            for i in range(0, len(current), 2):
                if i + 1 < len(current):
                    nxt.append(_hash_node(current[i], current[i + 1]))
                else:
                    nxt.append(current[i])
            self._levels.append(nxt)

    @property
    def root(self) -> bytes:
        """The Merkle root digest of the tree."""
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._leaves)

    def proof(self, index: int) -> MerkleProof:
        """Build an inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaves):
            raise LedgerError(f"leaf index {index} out of range [0, {len(self._leaves)})")
        path: list[tuple[bytes, bool]] = []
        position = index
        for level in self._levels[:-1]:
            sibling = position ^ 1
            if sibling < len(level):
                path.append((level[sibling], sibling > position))
            position //= 2
        return MerkleProof(leaf_index=index, path=tuple(path))

    @staticmethod
    def verify_proof(leaf: bytes, proof: MerkleProof, root: bytes) -> bool:
        """Check that ``leaf`` is included under ``root`` via ``proof``."""
        digest = _hash_leaf(leaf)
        for sibling, sibling_is_right in proof.path:
            if sibling_is_right:
                digest = _hash_node(digest, sibling)
            else:
                digest = _hash_node(sibling, digest)
        return digest == root


def merkle_root(leaves: list[bytes] | tuple[bytes, ...]) -> bytes:
    """Convenience helper returning only the root of a leaf list."""
    return MerkleTree(leaves).root
