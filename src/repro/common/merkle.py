"""Merkle tree used to compute per-block transaction roots (Section 7).

Each block in a shard's partial blockchain stores either the full batch of
transactions or only their Merkle root; the root is computed by pair-wise
hashing leaf digests up to a single root.  Inclusion proofs allow light
verification that a transaction belongs to a committed block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.crypto import sha256
from repro.errors import LedgerError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return sha256(_LEAF_PREFIX + data)


def _hash_node(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf.

    ``path`` holds ``(sibling_digest, sibling_is_right)`` pairs from the leaf
    up to the root.
    """

    leaf_index: int
    path: tuple[tuple[bytes, bool], ...]


class MerkleTree:
    """A static Merkle tree over an ordered list of byte-string leaves.

    Odd nodes at any level are promoted unchanged (Bitcoin-style duplication
    is avoided so that a single-leaf tree has root == hash(leaf)).
    """

    def __init__(self, leaves: list[bytes] | tuple[bytes, ...]) -> None:
        if not leaves:
            raise LedgerError("cannot build a Merkle tree over zero leaves")
        # Leaves on the hot path are memoised digests shared across replicas;
        # copying them per tree would defeat the sharing, so only coerce
        # non-bytes inputs (bytearray/memoryview from tests and tools).
        self._leaves = [leaf if type(leaf) is bytes else bytes(leaf) for leaf in leaves]
        self._levels: list[list[bytes]] = [[_hash_leaf(leaf) for leaf in self._leaves]]
        while len(self._levels[-1]) > 1:
            current = self._levels[-1]
            nxt: list[bytes] = []
            for i in range(0, len(current), 2):
                if i + 1 < len(current):
                    nxt.append(_hash_node(current[i], current[i + 1]))
                else:
                    nxt.append(current[i])
            self._levels.append(nxt)

    @property
    def root(self) -> bytes:
        """The Merkle root digest of the tree."""
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._leaves)

    def proof(self, index: int) -> MerkleProof:
        """Build an inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaves):
            raise LedgerError(f"leaf index {index} out of range [0, {len(self._leaves)})")
        path: list[tuple[bytes, bool]] = []
        position = index
        for level in self._levels[:-1]:
            sibling = position ^ 1
            if sibling < len(level):
                path.append((level[sibling], sibling > position))
            position //= 2
        return MerkleProof(leaf_index=index, path=tuple(path))

    @staticmethod
    def verify_proof(leaf: bytes, proof: MerkleProof, root: bytes) -> bool:
        """Check that ``leaf`` is included under ``root`` via ``proof``."""
        digest = _hash_leaf(leaf)
        for sibling, sibling_is_right in proof.path:
            if sibling_is_right:
                digest = _hash_node(digest, sibling)
            else:
                digest = _hash_node(sibling, digest)
        return digest == root


def merkle_root(leaves: list[bytes] | tuple[bytes, ...]) -> bytes:
    """Convenience helper returning only the root of a leaf list."""
    return MerkleTree(leaves).root


class BucketedDigest:
    """Rolling merkleized digest over a keyed state (checkpoint fast path).

    Keys hash into a fixed set of buckets (CRC32, deterministic across
    processes so every replica partitions identically); each bucket digests
    its key-sorted entries, and the state root is the Merkle root over the
    bucket digests.  Mutations mark only the owning bucket dirty, so a root
    request re-canonicalizes the touched buckets instead of the whole store.

    The root is a pure function of the entry set: a replica that arrived at a
    state incrementally and one that bulk-installed it via state transfer
    compute the same root.
    """

    def __init__(self, num_buckets: int = 64) -> None:
        if num_buckets < 1:
            raise LedgerError("BucketedDigest needs at least one bucket")
        self._num_buckets = num_buckets
        self._entries: list[dict[str, bytes]] = [{} for _ in range(num_buckets)]
        self._digests: list[bytes] = [sha256(b"")] * num_buckets
        self._dirty: set[int] = set()

    def _bucket_of(self, key: str) -> int:
        from zlib import crc32

        return crc32(key.encode()) % self._num_buckets

    def update(self, key: str, leaf: bytes) -> None:
        """Set ``key``'s leaf bytes and mark its bucket for re-digesting."""
        bucket = self._bucket_of(key)
        self._entries[bucket][key] = leaf
        self._dirty.add(bucket)

    def remove(self, key: str) -> None:
        bucket = self._bucket_of(key)
        if self._entries[bucket].pop(key, None) is not None:
            self._dirty.add(bucket)

    def reset(self) -> None:
        """Forget all entries (state-transfer install starts from scratch)."""
        for bucket in range(self._num_buckets):
            self._entries[bucket].clear()
        self._digests = [sha256(b"")] * self._num_buckets
        self._dirty.clear()

    def root(self) -> bytes:
        """Current state root; costs O(entries in dirty buckets) to refresh."""
        for bucket in self._dirty:
            entries = self._entries[bucket]
            self._digests[bucket] = sha256(
                b"|".join(entries[key] for key in sorted(entries))
            )
        self._dirty.clear()
        return merkle_root(self._digests)

    @property
    def dirty_buckets(self) -> int:
        return len(self._dirty)

    @property
    def entry_count(self) -> int:
        return sum(len(entries) for entries in self._entries)
