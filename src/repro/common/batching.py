"""Request batching (Section 7, *Blockchain*; Section 8, batch-size study).

Primaries aggregate client requests into batches and run one consensus per
batch.  The paper requires every request in a batch to access the *same set of
shards*, so a cross-shard batch travels the ring as a single unit and the
resulting block is appended to the ledger of every involved shard.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common.messages import ClientRequest


@dataclass
class Batcher:
    """Groups incoming client requests by involved-shard set.

    ``batch_size`` requests with identical involved-shard sets form one batch.
    ``flush`` force-closes partially filled groups (used at the end of a
    simulation or when a batching timer fires).
    """

    batch_size: int
    _groups: "OrderedDict[frozenset[int], list[ClientRequest]]" = field(default_factory=OrderedDict)

    def add(self, request: ClientRequest) -> list[ClientRequest] | None:
        """Add a request; return a full batch if one just completed, else ``None``."""
        key = request.transaction.involved_shards
        group = self._groups.setdefault(key, [])
        group.append(request)
        if len(group) >= self.batch_size:
            del self._groups[key]
            return group
        return None

    def stage(self, request: ClientRequest) -> None:
        """Queue a request without closing a batch.

        Pipelined primaries stage requests and pull them back out through
        :meth:`take` with an adaptively chosen size, instead of letting the
        fixed ``batch_size`` threshold close batches.
        """
        key = request.transaction.involved_shards
        self._groups.setdefault(key, []).append(request)

    def take(self, max_size: int) -> list[ClientRequest] | None:
        """Pop up to ``max_size`` requests from the oldest pending group.

        Batches stay homogeneous (one involved-shard set per batch), so a
        single call never mixes groups; ``None`` means nothing is pending.
        """
        if max_size < 1:
            return None
        for key, group in self._groups.items():
            if not group:
                continue
            if len(group) <= max_size:
                del self._groups[key]
                return group
            batch = group[:max_size]
            del group[:max_size]
            return batch
        return None

    @staticmethod
    def even_split(count: int, max_size: int) -> list[int]:
        """Split ``count`` requests into near-equal chunk sizes of at most ``max_size``.

        Balanced ceil-division: 9 requests with ``max_size=4`` become
        ``3+3+3``, never ``4+4+1`` -- the shared sizing rule that keeps a
        timer flush from emitting one-request crumbs while the queue is deep.
        """
        chunks = -(-count // max_size)
        base, extra = divmod(count, chunks)
        return [base + 1] * extra + [base] * (chunks - extra)

    def flush(self, max_size: int | None = None) -> list[list[ClientRequest]]:
        """Close and return every partially filled batch.

        With ``max_size`` (pipelined primaries) each group is emitted through
        the same :meth:`even_split` sizing the proposal pump uses, so the
        trailing flush produces balanced batches instead of whatever remainder
        the fill threshold left behind.
        """
        batches: list[list[ClientRequest]] = []
        for group in self._groups.values():
            if not group:
                continue
            if max_size is None or len(group) <= max_size:
                batches.append(group)
                continue
            start = 0
            for size in self.even_split(len(group), max_size):
                batches.append(group[start : start + size])
                start += size
        self._groups.clear()
        return batches

    @property
    def pending(self) -> int:
        """Number of requests currently waiting for their batch to fill."""
        return sum(len(group) for group in self._groups.values())
