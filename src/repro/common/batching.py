"""Request batching (Section 7, *Blockchain*; Section 8, batch-size study).

Primaries aggregate client requests into batches and run one consensus per
batch.  The paper requires every request in a batch to access the *same set of
shards*, so a cross-shard batch travels the ring as a single unit and the
resulting block is appended to the ledger of every involved shard.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.common.messages import ClientRequest


@dataclass
class Batcher:
    """Groups incoming client requests by involved-shard set.

    ``batch_size`` requests with identical involved-shard sets form one batch.
    ``flush`` force-closes partially filled groups (used at the end of a
    simulation or when a batching timer fires).
    """

    batch_size: int
    _groups: "OrderedDict[frozenset[int], list[ClientRequest]]" = field(default_factory=OrderedDict)

    def add(self, request: ClientRequest) -> list[ClientRequest] | None:
        """Add a request; return a full batch if one just completed, else ``None``."""
        key = request.transaction.involved_shards
        group = self._groups.setdefault(key, [])
        group.append(request)
        if len(group) >= self.batch_size:
            del self._groups[key]
            return group
        return None

    def flush(self) -> list[list[ClientRequest]]:
        """Close and return every partially filled batch."""
        batches = [group for group in self._groups.values() if group]
        self._groups.clear()
        return batches

    @property
    def pending(self) -> int:
        """Number of requests currently waiting for their batch to fill."""
        return sum(len(group) for group in self._groups.values())
