"""Protocol messages exchanged by clients and replicas.

The message set follows Figure 5 (normal case), Figure 6 (remote view
change), and the PBFT view-change sub-protocol the paper reuses.  Each
message knows its *wire size* in bytes; the per-type sizes come straight from
Section 8 ("The sizes of messages communicated during RingBFT consensus
are ...") and feed the analytical performance model.

Canonical byte representations (for MACs, signatures, digests) go through the
binary codec in :mod:`repro.common.codec`: payload fields carry raw values
(bytes digests, int shard keys) and the codec's type-tagged encoding keeps
them injective.  ``payload_bytes``/``digest`` are memoised on the frozen
message objects, so each message is encoded and hashed at most once per
process no matter how many times it is sent, received, or retransmitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common import codec
from repro.common.codec import register_wire_type
from repro.common.crypto import Signature, sha256
from repro.common.types import ReplicaId
from repro.txn.transaction import Transaction

#: Wire sizes (bytes) reported in Section 8 of the paper.  Messages not listed
#: there use reasonable estimates consistent with those numbers.
MESSAGE_SIZES: dict[str, int] = {
    "ClientRequest": 512,
    "PrePrepare": 5408,
    "Prepare": 216,
    "Commit": 269,
    "Forward": 6147,
    "Execute": 1732,
    "Checkpoint": 164,
    "ClientResponse": 256,
    "ViewChange": 1024,
    "NewView": 2048,
    "RemoteView": 300,
    "Vote2PC": 269,
    "Decide2PC": 269,
    "CrossPropose": 5408,
    "CrossAccept": 269,
}


@dataclass(frozen=True)
class Message:
    """Base class for every protocol message.

    ``sender`` is the authenticated origin; messages carried inside other
    messages (certificates) keep their own signatures.
    """

    sender: Any

    @property
    def type_name(self) -> str:
        return type(self).__name__

    def wire_size(self) -> int:
        """Size in bytes used by the network model and the analytical model."""
        return MESSAGE_SIZES.get(self.type_name, 512)

    def payload_bytes(self) -> bytes:
        """Canonical byte representation used for MACs/signatures.

        Encoded with the injective binary codec and memoised on the frozen
        instance: repeated sends/receptions of the same object reuse the
        cached bytes instead of re-serialising.
        """
        return codec.memoized_payload(self, self._payload_fields)

    def _payload_fields(self) -> dict[str, Any]:
        return {"type": self.type_name, "sender": str(self.sender)}

    def digest(self) -> bytes:
        return codec.memoized_digest(self, self._payload_fields)

    # ------------------------------------------------------------------
    # broadcast authentication side-channel
    # ------------------------------------------------------------------
    #
    # The sender's MAC vector (one pairwise tag per receiver, keyed
    # "peer:<replica>") rides alongside the frozen message.  Tags live outside
    # the dataclass fields so they never affect equality, hashing, or the
    # canonical payload -- exactly like a MAC trailer on a real wire frame.
    # Each receiver verifies *its own* tag against the claimed sender's
    # pairwise key; no verification verdict is ever cached on the shared
    # object, so no receiver (or Byzantine code path) can vouch a tag for
    # anyone else, and nothing depends on receivers sharing object identity
    # (a socket transport that deserialises per-receiver copies only needs to
    # carry the tag map).

    def attach_auth(self, label: str, tag: bytes) -> None:
        tags = self.__dict__.get("_auth_tags")
        if tags is None:
            tags = {}
            object.__setattr__(self, "_auth_tags", tags)
        tags[label] = tag

    def auth_tag(self, label: str) -> bytes | None:
        tags = self.__dict__.get("_auth_tags")
        return None if tags is None else tags.get(label)

    def auth_tags(self) -> dict[str, bytes]:
        """The full MAC vector riding on this message (copy).

        The socket transport ships the *whole* vector with every wire copy --
        not just the addressee's tag -- because RingBFT's local relay forwards
        a received cross-shard message to shard peers, who must verify the
        original sender's tags for themselves.
        """
        tags = self.__dict__.get("_auth_tags")
        return {} if tags is None else dict(tags)


# ---------------------------------------------------------------------------
# Client traffic
# ---------------------------------------------------------------------------


#: Packed layouts for the rich envelopes: the ``txn`` slot splices the
#: transaction's memoised canonical bytes verbatim (the codec is
#: compositional), so encoding a fresh ClientRequest costs one layout
#: assembly instead of re-walking the whole nested transaction dict.
_CLIENT_REQUEST_LAYOUT = codec.compile_fixed_dict(
    {"type": "ClientRequest"}, ("sender", "txn"), raw_keys=("txn",)
)


@register_wire_type
@dataclass(frozen=True)
class ClientRequest(Message):
    """``<T_I>_c`` -- a client-signed transaction submitted to a primary."""

    transaction: Transaction
    signature: Signature | None = None

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "txn": self.transaction.to_wire(),
        }

    def payload_bytes(self) -> bytes:
        cached = self.__dict__.get("_payload_memo")
        if cached is not None and not codec.LEGACY.enabled:
            codec.STATS.payload_hits += 1
            return cached
        return codec.memoized_packed_payload(
            self,
            _CLIENT_REQUEST_LAYOUT,
            self._payload_fields,
            (str(self.sender), self.transaction.payload_bytes()),
        )


@register_wire_type
@dataclass(frozen=True)
class ClientResponse(Message):
    """Response(T, k, r) returned to the client by f+1 replicas."""

    txn_id: str
    sequence: int
    result: dict[str, str]
    shard: int

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "txn_id": self.txn_id,
            "sequence": self.sequence,
            "result": self.result,
            "shard": self.shard,
        }


# ---------------------------------------------------------------------------
# Intra-shard PBFT phases
# ---------------------------------------------------------------------------


@register_wire_type
@dataclass(frozen=True)
class PrePrepare(Message):
    """Primary's proposal ordering a batch of requests at sequence ``sequence``."""

    view: int
    sequence: int
    batch_digest: bytes
    requests: tuple[ClientRequest, ...]

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.batch_digest,
        }


# ---------------------------------------------------------------------------
# Fixed-layout fast paths for the small vote types
# ---------------------------------------------------------------------------
#
# Prepare/Commit/Checkpoint are tiny, fixed-shape, and minted fresh on every
# consensus round, so their first (and only, thanks to the memo) encode is
# pure overhead in the generic codec walker.  Each layout below is compiled
# once at import time and produces bytes *identical* to encode_canonical of
# the corresponding ``_payload_fields`` dict -- the equivalence is pinned by
# tests, so MACs/signatures/digests interoperate with generic encoders.

_PREPARE_LAYOUT = codec.compile_fixed_dict(
    {"type": "Prepare"}, ("sender", "view", "sequence", "digest")
)
_COMMIT_LAYOUT = codec.compile_fixed_dict(
    {"type": "Commit"}, ("sender", "view", "sequence", "digest")
)
_CHECKPOINT_LAYOUT = codec.compile_fixed_dict(
    {"type": "Checkpoint"}, ("sender", "sequence", "digest")
)
_COMMIT_VOTE_LAYOUT = codec.compile_fixed_dict(
    {"type": "Commit"}, ("view", "sequence", "digest")
)


def _packed_payload_bytes(
    layout: Callable[..., bytes], values_of: Callable[[Any], tuple[Any, ...]]
) -> Callable[[Any], bytes]:
    """Build a ``payload_bytes`` method over a compiled ``layout``.

    One definition of the hit-path protocol for all packed vote types: a
    broadcast vote is re-encoded once per receiver verification, so a memo
    hit must stay a bare dict lookup -- no ``str(sender)``/tuple work just to
    discover the cached bytes.  ``values_of`` extracts the dynamic values in
    the layout's declared order.
    """

    def payload_bytes(self) -> bytes:
        cached = self.__dict__.get("_payload_memo")
        if cached is not None and not codec.LEGACY.enabled:
            codec.STATS.payload_hits += 1
            return cached
        return codec.memoized_packed_payload(
            self, layout, self._payload_fields, values_of(self)
        )

    return payload_bytes


@register_wire_type
@dataclass(frozen=True)
class Prepare(Message):
    """Backup's agreement to support the primary's ``sequence``-th proposal."""

    view: int
    sequence: int
    batch_digest: bytes

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.batch_digest,
        }

    payload_bytes = _packed_payload_bytes(
        _PREPARE_LAYOUT,
        lambda self: (str(self.sender), self.view, self.sequence, self.batch_digest),
    )


def _commit_vote_fields(view: int, sequence: int, batch_digest: bytes) -> dict[str, Any]:
    """The fields replicas sign in a Commit vote (sender excluded on purpose:
    ``nf`` distinct signatures over the *same* bytes form a certificate)."""
    return {
        "type": "Commit",
        "view": view,
        "sequence": sequence,
        "digest": batch_digest,
    }


def _memoized_signed_payload(obj: Any, view: int, sequence: int, batch_digest: bytes) -> bytes:
    if codec.LEGACY.enabled:
        return codec.legacy_json_bytes(_commit_vote_fields(view, sequence, batch_digest))
    cached = obj.__dict__.get("_signed_payload_memo")
    if cached is None:
        cached = _COMMIT_VOTE_LAYOUT(view, sequence, batch_digest)
        object.__setattr__(obj, "_signed_payload_memo", cached)
    return cached


@register_wire_type
@dataclass(frozen=True)
class Commit(Message):
    """Commit vote; for cross-shard batches it is digitally signed so the
    signatures can later prove replication to the next shard."""

    view: int
    sequence: int
    batch_digest: bytes
    signature: Signature | None = None

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.batch_digest,
        }

    payload_bytes = _packed_payload_bytes(
        _COMMIT_LAYOUT,
        lambda self: (str(self.sender), self.view, self.sequence, self.batch_digest),
    )

    def signed_payload(self) -> bytes:
        """The byte string replicas sign: excludes the signature itself."""
        return _memoized_signed_payload(self, self.view, self.sequence, self.batch_digest)


@register_wire_type
@dataclass(frozen=True)
class CommitCertificate:
    """``nf`` distinct signed Commit messages proving a batch was replicated.

    This is the set ``A`` of Figure 5 line 16, attached to ``Forward``
    messages so the next shard can verify the previous shard's consensus.
    """

    shard: int
    view: int
    sequence: int
    batch_digest: bytes
    signatures: tuple[Signature, ...]

    def signed_payload(self) -> bytes:
        return _memoized_signed_payload(self, self.view, self.sequence, self.batch_digest)

    @property
    def distinct_signers(self) -> int:
        return len({sig.signer for sig in self.signatures})


# ---------------------------------------------------------------------------
# Cross-shard messages (RingBFT)
# ---------------------------------------------------------------------------


_FORWARD_LAYOUT = codec.compile_fixed_dict(
    {"type": "Forward"},
    ("sender", "digest", "origin_shard", "reads", "txns"),
    raw_keys=("txns",),
)


@register_wire_type
@dataclass(frozen=True)
class Forward(Message):
    """Forward(<T_I>_c, A, m, Delta) -- sent replica-to-replica to the next shard.

    Carries the cross-shard batch (the client-signed requests), the commit
    certificate ``A`` proving the previous shard replicated it, the batch
    digest ``Delta`` used as the cross-shard identity of the batch, and -- for
    complex transactions -- the read/write sets accumulated so far along the
    ring (Section 8.8: "requiring each shard to send its read-write sets along
    with the Forward message").
    """

    requests: tuple[ClientRequest, ...]
    certificate: CommitCertificate
    batch_digest: bytes
    origin_shard: int
    read_sets: dict[int, dict[str, str]] = field(default_factory=dict)
    signature: Signature | None = None

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "txns": [req.transaction.txn_id for req in self.requests],
            "digest": self.batch_digest,
            "origin_shard": self.origin_shard,
            "reads": self.read_sets,
        }

    def payload_bytes(self) -> bytes:
        cached = self.__dict__.get("_payload_memo")
        if cached is not None and not codec.LEGACY.enabled:
            codec.STATS.payload_hits += 1
            return cached
        txns = codec.list_frame(
            [codec.encode_canonical(req.transaction.txn_id) for req in self.requests]
        )
        return codec.memoized_packed_payload(
            self,
            _FORWARD_LAYOUT,
            self._payload_fields,
            (str(self.sender), self.batch_digest, self.origin_shard, self.read_sets, txns),
        )


@register_wire_type
@dataclass(frozen=True)
class Execute(Message):
    """Execute(Delta, Sigma_I) -- second-rotation message carrying write sets.

    ``write_sets`` maps shard id -> {key -> committed value} and accumulates
    as the message travels the ring, resolving cross-shard dependencies of
    complex transactions.
    """

    batch_digest: bytes
    txn_ids: tuple[str, ...]
    write_sets: dict[int, dict[str, str]]
    origin_shard: int
    signature: Signature | None = None

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "txn_ids": list(self.txn_ids),
            "digest": self.batch_digest,
            "origin_shard": self.origin_shard,
            "writes": self.write_sets,
        }


@register_wire_type
@dataclass(frozen=True)
class RemoteView(Message):
    """RemoteView(<T_I>_c, Delta) -- asks the previous shard to view-change (Figure 6)."""

    batch_digest: bytes
    target_shard: int
    signature: Signature | None = None

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "digest": self.batch_digest,
            "target_shard": self.target_shard,
        }


# ---------------------------------------------------------------------------
# Checkpointing and view changes (PBFT recovery machinery)
# ---------------------------------------------------------------------------


@register_wire_type
@dataclass(frozen=True)
class Checkpoint(Message):
    """Periodic state digest allowing log truncation and dark-replica catch-up."""

    sequence: int
    state_digest: bytes

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "sequence": self.sequence,
            "digest": self.state_digest,
        }

    payload_bytes = _packed_payload_bytes(
        _CHECKPOINT_LAYOUT,
        lambda self: (str(self.sender), self.sequence, self.state_digest),
    )


@register_wire_type
@dataclass(frozen=True)
class PreparedProof:
    """Evidence that a request was prepared: the PrePrepare plus nf Prepare votes.

    ``requests`` carries the prepared batch itself so that a new primary that
    never stored the batch can still re-propose it in the new view.
    """

    sequence: int
    view: int
    batch_digest: bytes
    prepares: int
    requests: tuple[ClientRequest, ...] = ()


@register_wire_type
@dataclass(frozen=True)
class ViewChange(Message):
    """ViewChange vote asking to install ``new_view`` in the sender's shard."""

    new_view: int
    last_stable_sequence: int
    prepared: tuple[PreparedProof, ...] = ()

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "new_view": self.new_view,
            "stable": self.last_stable_sequence,
            # Bind the full prepared claims, not just the sequence numbers: a
            # tag over a weaker payload could be replayed onto a forged
            # variant carrying different digests.  The batch contents are
            # bound transitively through batch_digest (collision resistance).
            "prepared": [[p.sequence, p.view, p.batch_digest] for p in self.prepared],
        }


@register_wire_type
@dataclass(frozen=True)
class NewView(Message):
    """New primary's announcement installing ``view`` with re-proposed requests.

    ``abandoned`` lists sequence numbers the new primary could not find a
    prepared certificate for; replicas treat them as no-ops so that in-order
    execution and sequence-ordered locking do not stall on the gap (the
    classic PBFT null-request fill).
    """

    view: int
    view_change_senders: tuple[str, ...]
    reproposals: tuple[PrePrepare, ...] = ()
    abandoned: tuple[int, ...] = ()

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "view": self.view,
            "vc": list(self.view_change_senders),
            "abandoned": list(self.abandoned),
            # Bind the re-proposals: without this, a valid tag could be
            # replayed onto a variant of the NewView carrying attacker-chosen
            # batches.  Each re-proposal's requests are bound through its
            # batch_digest, which _handle_pre_prepare re-checks.
            "reproposals": [[p.sequence, p.view, p.batch_digest] for p in self.reproposals],
        }


# ---------------------------------------------------------------------------
# State transfer (dark-replica catch-up)
# ---------------------------------------------------------------------------


@register_wire_type
@dataclass(frozen=True)
class StateTransferRequest(Message):
    """Request from a lagging replica asking peers for their current state.

    A replica that observes stable checkpoints far beyond its own execution
    point (it was kept in the dark by a malicious primary, or it crashed and
    recovered) asks its shard peers for a state snapshot instead of replaying
    every missed batch.
    """

    last_executed: int

    def wire_size(self) -> int:
        return 128

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "last_executed": self.last_executed,
        }


@register_wire_type
@dataclass(frozen=True)
class StateTransferReply(Message):
    """A peer's state snapshot: store contents, ledger blocks, execution point.

    The requester installs a snapshot only after ``f + 1`` replies agree on
    the state digest, so a single Byzantine peer cannot poison its state.
    """

    last_executed: int
    state_digest: bytes
    store_snapshot: dict[str, str]
    executed_txn_ids: tuple[str, ...]
    blocks: tuple[Any, ...] = ()

    def wire_size(self) -> int:
        # Dominated by the snapshot; approximate with one KV pair ~ 64 bytes.
        return 512 + 64 * len(self.store_snapshot)

    def _payload_fields(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "last_executed": self.last_executed,
            "digest": self.state_digest,
        }


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def batch_digest(requests: tuple[ClientRequest, ...] | list[ClientRequest]) -> bytes:
    """Digest of a batch of client requests (the ``Delta`` of Figure 5).

    Reuses the memoised per-transaction digests, so re-deriving the batch
    digest of a known batch (every PrePrepare reception does this) costs one
    concatenation and one hash instead of a full re-serialisation.
    """
    parts = b"".join(req.transaction.digest() for req in requests)
    return sha256(parts)


@dataclass
class MessageStats:
    """Running tally of messages and bytes, grouped by message type.

    The simulator attaches one of these to every replica; unit tests use it to
    validate the analytical model's message-count formulas against the real
    protocol implementation.
    """

    sent_count: dict[str, int] = field(default_factory=dict)
    sent_bytes: dict[str, int] = field(default_factory=dict)
    #: Client requests this node dropped instead of processing, by reason
    #: (e.g. ``unroutable`` when the ring cannot route the involved shards).
    dropped_requests: dict[str, int] = field(default_factory=dict)

    def record(self, message: Message) -> None:
        name = message.type_name
        self.sent_count[name] = self.sent_count.get(name, 0) + 1
        self.sent_bytes[name] = self.sent_bytes.get(name, 0) + message.wire_size()

    def record_fanout(self, message: Message, destinations: int) -> None:
        """Tally a multicast of ``message`` to ``destinations`` peers.

        Equivalent to ``destinations`` calls to :meth:`record` but resolves
        the type name and wire size once per fan-out instead of once per copy.
        """
        if destinations <= 0:
            return
        name = message.type_name
        self.sent_count[name] = self.sent_count.get(name, 0) + destinations
        self.sent_bytes[name] = (
            self.sent_bytes.get(name, 0) + destinations * message.wire_size()
        )

    def record_dropped_request(self, reason: str) -> None:
        self.dropped_requests[reason] = self.dropped_requests.get(reason, 0) + 1

    @property
    def total_messages(self) -> int:
        return sum(self.sent_count.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.sent_bytes.values())

    @property
    def total_dropped_requests(self) -> int:
        return sum(self.dropped_requests.values())

    def merged_with(self, other: "MessageStats") -> "MessageStats":
        merged = MessageStats()
        for stats in (self, other):
            for name, count in stats.sent_count.items():
                merged.sent_count[name] = merged.sent_count.get(name, 0) + count
            for name, nbytes in stats.sent_bytes.items():
                merged.sent_bytes[name] = merged.sent_bytes.get(name, 0) + nbytes
            for reason, count in stats.dropped_requests.items():
                merged.dropped_requests[reason] = merged.dropped_requests.get(reason, 0) + count
        return merged


def sender_replica(message: Message) -> ReplicaId:
    """Typed accessor for messages whose sender is a replica."""
    if not isinstance(message.sender, ReplicaId):
        raise TypeError(f"message {message.type_name} was not sent by a replica")
    return message.sender
