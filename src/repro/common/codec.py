"""Canonical binary wire codec for protocol payloads.

Every MAC, signature, and digest in the stack bottoms out in a canonical byte
representation of a message payload.  The original implementation re-ran
``json.dumps(..., sort_keys=True, default=str)`` on every call, which has two
problems:

* **cost** -- JSON canonicalization dominated the CPU profile the paper
  attributes to cryptography (the payload is re-serialised on every send,
  every reception, and every retransmission of the same message);
* **ambiguity** -- ``default=str`` silently stringifies bytes and nested
  objects, so two *distinct* payloads (``b"\\x01"`` vs ``"b'\\\\x01'"``, int
  keys vs their string form) could serialize -- and therefore digest -- to the
  same bytes.

This module replaces it with a compact, deterministic, *injective* binary
encoding: every value is emitted as a one-byte type tag followed by a
length-prefixed body, so distinct values of distinct types can never collide.
Container contents are self-delimiting, dictionaries and sets are ordered by
their encoded key bytes (total and type-safe, unlike comparing mixed-type
keys), and registered dataclasses round-trip losslessly through
:func:`decode_canonical`.

The module also hosts the process-wide codec statistics (payload/digest memo
hit counters surfaced through ``RunResult`` and the CLI) and the *legacy
mode* switch used by ``benchmarks/bench_hotpath.py`` to reproduce the pre-
codec cost profile for an honest before/after comparison.
"""

from __future__ import annotations

import enum
import hashlib
import json
import struct
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable

from repro.errors import MalformedMessageError

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")

# One-byte type tags.  Distinct tags per type are what make the encoding
# injective: bytes can never collide with the str of those bytes, nor an int
# key with its decimal string.
_NONE = b"N"
_TRUE = b"T"
_FALSE = b"F"
_INT = b"I"
_FLOAT = b"D"
_STR = b"S"
_BYTES = b"B"
_LIST = b"L"
_TUPLE = b"U"
_DICT = b"M"
_FROZENSET = b"Z"
_OBJECT = b"O"
_ENUM = b"E"


# ---------------------------------------------------------------------------
# wire-type registry (for lossless decode of dataclasses and enums)
# ---------------------------------------------------------------------------

_WIRE_TYPES: dict[str, type] = {}


def register_wire_type(cls: type) -> type:
    """Register a dataclass or enum so :func:`decode_canonical` can rebuild it.

    Usable as a decorator.  Registration is keyed by class name; the protocol
    message set has globally unique names, which the registry enforces.
    """
    name = cls.__name__
    existing = _WIRE_TYPES.get(name)
    if existing is not None and existing is not cls:
        raise MalformedMessageError(f"wire type name {name!r} registered twice")
    _WIRE_TYPES[name] = cls
    return cls


def registered_wire_types() -> dict[str, type]:
    """Snapshot of the registry (used by the round-trip property tests)."""
    return dict(_WIRE_TYPES)


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


# Length prefixes are 4-byte big-endian; the first 256 are interned since
# almost every string/collection on the hot path is short.
_LEN = [_U32.pack(i) for i in range(256)]
_pack_u32 = _U32.pack


def _pack_len(n: int) -> bytes:
    return _LEN[n] if n < 256 else _pack_u32(n)


def _encode_str(value: str, out: list[bytes]) -> None:
    body = value.encode()
    out.append(_STR)
    out.append(_pack_len(len(body)))
    out.append(body)


def _encode_int(value: int, out: list[bytes]) -> None:
    body = str(value).encode()
    out.append(_INT)
    out.append(_pack_len(len(body)))
    out.append(body)


def _encode_bytes(value: bytes, out: list[bytes]) -> None:
    out.append(_BYTES)
    out.append(_pack_len(len(value)))
    out.append(value)


def _encode_float(value: float, out: list[bytes]) -> None:
    if value != value:
        # NaN compares unequal to itself, so NaN payloads would break both
        # the "equal values -> identical bytes" contract and dict-key sorting
        # (sorting a dict with NaN keys is input-order dependent).
        raise MalformedMessageError("cannot canonically encode NaN")
    if value == 0.0:
        value = 0.0  # collapse -0.0: equal values must share one encoding
    out.append(_FLOAT)
    out.append(_F64.pack(value))


def _encode_bool(value: bool, out: list[bytes]) -> None:
    out.append(_TRUE if value else _FALSE)


def _sorted_items(value: dict[Any, Any]) -> list[tuple[Any, Any]]:
    """Dict entries in canonical encoding order (shared by encode and the
    decoder's canonical-form validation)."""
    try:
        # Fast path: homogeneous (string or int) keys sort natively.  Keys
        # are unique, so the tuple comparison never reaches the values.
        return sorted(value.items())
    except TypeError:
        # Mixed key types: order by encoded key bytes (total and type-safe).
        return [kv for _, kv in sorted((encode_canonical(k), (k, v)) for k, v in value.items())]


def _encode_dict(value: dict[Any, Any], out: list[bytes]) -> None:
    out.append(_DICT)
    out.append(_pack_len(len(value)))
    for key, val in _sorted_items(value):
        _encode_into(key, out)
        _encode_into(val, out)


def _encode_list(value: list[Any], out: list[bytes]) -> None:
    out.append(_LIST)
    out.append(_pack_len(len(value)))
    for item in value:
        _encode_into(item, out)


def _encode_tuple(value: tuple[Any, ...], out: list[bytes]) -> None:
    out.append(_TUPLE)
    out.append(_pack_len(len(value)))
    for item in value:
        _encode_into(item, out)


def _encode_frozenset(value: frozenset[Any], out: list[bytes]) -> None:
    encoded = sorted(encode_canonical(item) for item in value)
    out.append(_FROZENSET)
    out.append(_pack_len(len(encoded)))
    out.extend(encoded)


_ENCODERS: dict[type, Callable[[Any, list[bytes]], None]] = {
    str: _encode_str,
    int: _encode_int,
    bytes: _encode_bytes,
    float: _encode_float,
    bool: _encode_bool,
    dict: _encode_dict,
    list: _encode_list,
    tuple: _encode_tuple,
    frozenset: _encode_frozenset,
    set: _encode_frozenset,
}

#: Per-dataclass encoding plan: (object header, per-field name headers, names).
_DATACLASS_PLANS: dict[type, tuple[bytes, tuple[bytes, ...], tuple[str, ...]]] = {}


def _dataclass_plan(cls: type) -> tuple[bytes, tuple[bytes, ...], tuple[str, ...]]:
    plan = _DATACLASS_PLANS.get(cls)
    if plan is None:
        name = cls.__name__.encode()
        names = tuple(f.name for f in fields(cls))
        header = _OBJECT + _pack_len(len(name)) + name + _pack_len(len(names))
        field_headers = tuple(
            _pack_len(len(n.encode())) + n.encode() for n in names
        )
        plan = (header, field_headers, names)
        _DATACLASS_PLANS[cls] = plan
    return plan


def _encode_into(value: Any, out: list[bytes]) -> None:
    encoder = _ENCODERS.get(type(value))
    if encoder is not None:
        encoder(value, out)
        return
    if value is None:
        out.append(_NONE)
        return
    if isinstance(value, enum.Enum):
        name = type(value).__name__.encode()
        out.append(_ENUM)
        out.append(_pack_len(len(name)))
        out.append(name)
        _encode_into(value.value, out)
        return
    if is_dataclass(value):
        header, field_headers, names = _dataclass_plan(type(value))
        out.append(header)
        for field_header, fname in zip(field_headers, names):
            out.append(field_header)
            _encode_into(getattr(value, fname), out)
        return
    if isinstance(value, int):  # int subclasses outside the Enum machinery
        _encode_int(int(value), out)
        return
    if isinstance(value, str):
        _encode_str(str(value), out)
        return
    raise MalformedMessageError(
        f"cannot canonically encode {type(value).__name__}: {value!r}"
    )


def encode_canonical(value: Any) -> bytes:
    """Deterministic, injective byte encoding of ``value``.

    Two calls with equal values *of the same types* always return identical
    bytes; values of distinct types always return distinct bytes -- even when
    Python ``==`` equates them (``True`` vs ``1``, ``1`` vs ``1.0``), because
    type-blind collapsing is exactly what broke injectivity in the old JSON
    path.  Payload builders must therefore be type-stable: derive a field
    from one code path, not sometimes-int/sometimes-bool.
    """
    out: list[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def compile_fixed_dict(
    static: dict[str, Any],
    dynamic_keys: tuple[str, ...],
    raw_keys: tuple[str, ...] = (),
) -> Callable[..., bytes]:
    """Compile a fixed-layout encoder for dicts with a known key set.

    The hot vote payloads (Prepare/Commit/Checkpoint) are tiny dicts whose
    keys -- and some values -- never change; paying the generic codec walker
    (dict construction, key sorting, per-value dispatch) for every fresh vote
    is ~20% of the optimized macro profile.  This precompiles everything
    static into constant byte segments at import time and leaves only the
    dynamic values to encode per call.

    Returns ``encode(*values)`` taking the dynamic values *in the order of
    ``dynamic_keys``* and producing bytes **identical** to
    ``encode_canonical({**static, **dict(zip(dynamic_keys, values))})`` --
    the fast path never changes the wire format, so digests, MACs, and
    signatures interoperate with generically-encoded peers (enforced by the
    vote-codec equivalence tests).  Dynamic values of type ``str``/``int``/
    ``bytes`` take the inlined fast path; anything else falls back to the
    generic (still injective) walker.

    Keys listed in ``raw_keys`` are *splice slots*: the value supplied for
    such a key must already be canonical codec bytes (e.g. a nested
    envelope's memoised ``payload_bytes()`` or a :func:`list_frame`) and is
    inserted verbatim.  This is what lets the rich envelopes
    (ClientRequest/Forward/Transaction) reuse the encoding work of their
    parts instead of re-walking nested structures; the caller is responsible
    for splicing only well-formed canonical frames.
    """
    if set(static) & set(dynamic_keys):
        raise MalformedMessageError("static and dynamic keys overlap")
    if not set(raw_keys) <= set(dynamic_keys):
        raise MalformedMessageError("raw_keys must be a subset of dynamic_keys")
    ordered = sorted({**static, **{k: None for k in dynamic_keys}})
    consts: list[bytes] = []
    slots: list[tuple[int, bool]] = []
    pending = bytearray(_DICT + _pack_len(len(ordered)))
    for key in ordered:
        pending += encode_canonical(key)
        if key in static:
            pending += encode_canonical(static[key])
        else:
            consts.append(bytes(pending))
            pending = bytearray()
            slots.append((dynamic_keys.index(key), key in raw_keys))
    consts.append(bytes(pending))
    slot_triples = tuple(
        (const, slot, raw) for const, (slot, raw) in zip(consts[:-1], slots)
    )
    tail = consts[-1]

    def encode(*values: Any) -> bytes:
        out: list[bytes] = []
        for const, slot, raw in slot_triples:
            out.append(const)
            value = values[slot]
            if raw:
                out.append(value)
                continue
            kind = type(value)
            if kind is bytes:
                out.append(_BYTES)
                out.append(_pack_len(len(value)))
                out.append(value)
            elif kind is int:  # bool is a distinct type and falls through
                body = str(value).encode()
                out.append(_INT)
                out.append(_pack_len(len(body)))
                out.append(body)
            elif kind is str:
                body = value.encode()
                out.append(_STR)
                out.append(_pack_len(len(body)))
                out.append(body)
            else:
                out.append(encode_canonical(value))
        out.append(tail)
        return b"".join(out)

    return encode


def tuple_frame(encoded_items: tuple[bytes, ...] | list[bytes]) -> bytes:
    """Assemble the canonical encoding of a tuple from pre-encoded items.

    The codec is compositional: the bytes a value contributes inside a
    container are exactly its own :func:`encode_canonical` output.  This
    helper exploits that for fan-out fast paths -- a socket multicast encodes
    the expensive shared suffix (tags + message) once and prepends only the
    per-destination item, yielding bytes identical to
    ``encode_canonical(tuple(items))``.
    """
    return _TUPLE + _pack_len(len(encoded_items)) + b"".join(encoded_items)


def list_frame(encoded_items: tuple[bytes, ...] | list[bytes]) -> bytes:
    """Assemble the canonical encoding of a list from pre-encoded items.

    List analogue of :func:`tuple_frame`, used by the packed Transaction
    layout to splice per-operation frames into the ``operations`` list
    without re-walking each operation dict.
    """
    return _LIST + _pack_len(len(encoded_items)) + b"".join(encoded_items)


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------


def _read_len(data: bytes, pos: int) -> tuple[int, int]:
    end = pos + 4
    if end > len(data):
        raise MalformedMessageError("truncated length prefix")
    return _U32.unpack_from(data, pos)[0], end


def _decode_from(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise MalformedMessageError("truncated canonical encoding")
    tag = data[pos : pos + 1]
    pos += 1
    if tag == _NONE:
        return None, pos
    if tag == _TRUE:
        return True, pos
    if tag == _FALSE:
        return False, pos
    if tag == _INT:
        length, pos = _read_len(data, pos)
        if pos + length > len(data):
            raise MalformedMessageError("truncated int body")
        body = data[pos : pos + length]
        value = int(body)
        # Reject non-canonical spellings ("+5", " 5", "5_0"): decode must be
        # the exact inverse of encode, or two distinct frames could decode to
        # equal values and defeat digest-by-reencode checks.
        if str(value).encode() != body:
            raise MalformedMessageError(f"non-canonical int body {body!r}")
        return value, pos + length
    if tag == _STR:
        length, pos = _read_len(data, pos)
        if pos + length > len(data):
            raise MalformedMessageError("truncated str body")
        return data[pos : pos + length].decode(), pos + length
    if tag == _BYTES:
        length, pos = _read_len(data, pos)
        if pos + length > len(data):
            raise MalformedMessageError("truncated bytes body")
        return data[pos : pos + length], pos + length
    if tag == _FLOAT:
        value = _F64.unpack_from(data, pos)[0]
        # Mirror the encoder's canonicality rules: encode never emits NaN or
        # the -0.0 bit pattern, so decode must reject them -- otherwise two
        # distinct frames could decode to equal values and defeat
        # digest-by-reencode checks.
        if value != value:
            raise MalformedMessageError("non-canonical float body: NaN")
        if value == 0.0 and data[pos : pos + 8] != _F64.pack(0.0):
            raise MalformedMessageError("non-canonical float body: -0.0")
        return value, pos + 8
    if tag == _DICT:
        count, pos = _read_len(data, pos)
        items = []
        for _ in range(count):
            key, pos = _decode_from(data, pos)
            val, pos = _decode_from(data, pos)
            items.append((key, val))
        result = dict(items)
        if len(result) != count:
            raise MalformedMessageError("duplicate dict keys in canonical encoding")
        if count > 1 and [k for k, _ in items] != [k for k, _ in _sorted_items(result)]:
            raise MalformedMessageError("non-canonical dict entry order")
        return result, pos
    if tag == _LIST:
        count, pos = _read_len(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return items, pos
    if tag == _TUPLE:
        count, pos = _read_len(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _FROZENSET:
        count, pos = _read_len(data, pos)
        items = []
        previous = None
        for _ in range(count):
            start = pos
            item, pos = _decode_from(data, pos)
            encoded = data[start:pos]
            # Encode sorts elements by their encoded bytes (and a set cannot
            # hold duplicates), so anything but a strictly increasing element
            # sequence is a non-canonical frame.
            if previous is not None and encoded <= previous:
                raise MalformedMessageError("non-canonical frozenset element order")
            previous = encoded
            items.append(item)
        return frozenset(items), pos
    if tag == _ENUM:
        length, pos = _read_len(data, pos)
        name = data[pos : pos + length].decode()
        pos += length
        value, pos = _decode_from(data, pos)
        cls = _WIRE_TYPES.get(name)
        if cls is None:
            raise MalformedMessageError(f"unknown enum wire type {name!r}")
        if not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
            raise MalformedMessageError(f"wire type {name!r} is not an enum")
        return cls(value), pos
    if tag == _OBJECT:
        length, pos = _read_len(data, pos)
        name = data[pos : pos + length].decode()
        pos += length
        count, pos = _read_len(data, pos)
        cls = _WIRE_TYPES.get(name)
        if cls is None:
            raise MalformedMessageError(f"unknown object wire type {name!r}")
        if not is_dataclass(cls):
            raise MalformedMessageError(f"wire type {name!r} is not a dataclass")
        # Enforce canonical form like the other containers: the encoder emits
        # exactly the dataclass's fields in declaration order, so a frame with
        # missing, duplicate, extra, or reordered fields must be rejected --
        # not silently normalised into an equal object.
        expected = _dataclass_plan(cls)[2]
        if count != len(expected):
            raise MalformedMessageError(
                f"object frame for {name!r} carries {count} fields, expected {len(expected)}"
            )
        kwargs = {}
        for index in range(count):
            flen, pos = _read_len(data, pos)
            fname = data[pos : pos + flen].decode()
            pos += flen
            if fname != expected[index]:
                raise MalformedMessageError(
                    f"non-canonical field order for {name!r}: "
                    f"got {fname!r}, expected {expected[index]!r}"
                )
            value, pos = _decode_from(data, pos)
            kwargs[fname] = value
        return cls(**kwargs), pos
    raise MalformedMessageError(f"unknown canonical type tag {tag!r}")


def decode_canonical(data: bytes) -> Any:
    """Inverse of :func:`encode_canonical` for registered wire types.

    Every malformed input fails with :class:`MalformedMessageError` -- the
    low-level struct/unicode/constructor errors a truncated or corrupted
    frame can trigger are translated, so callers (eventually: a socket
    transport fed attacker-controlled bytes) have one error to catch.
    """
    try:
        value, pos = _decode_from(data, 0)
    except MalformedMessageError:
        raise
    except (struct.error, ValueError, TypeError, UnicodeDecodeError, IndexError) as exc:
        raise MalformedMessageError(f"malformed canonical encoding: {exc}") from exc
    if pos != len(data):
        raise MalformedMessageError(
            f"{len(data) - pos} trailing bytes after canonical value"
        )
    return value


# ---------------------------------------------------------------------------
# codec statistics (memo-cache efficacy counters)
# ---------------------------------------------------------------------------


@dataclass
class CodecStats:
    """Process-wide counters for the payload/digest memo caches.

    ``payload_misses`` counts actual encodings, ``payload_hits`` counts calls
    served from a frozen object's memo; likewise for digests.  The counters
    are cumulative for the process -- callers interested in one run window
    snapshot before and delta after (see ``Deployment.collect_result``).
    """

    payload_hits: int = 0
    payload_misses: int = 0
    digest_hits: int = 0
    digest_misses: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "payload_hits": self.payload_hits,
            "payload_misses": self.payload_misses,
            "digest_hits": self.digest_hits,
            "digest_misses": self.digest_misses,
        }

    def delta_since(self, before: dict[str, int] | None) -> dict[str, dict[str, int]]:
        """Hit/miss deltas since ``before``, shaped like ``LruCache.stats()``."""
        base = before or {}
        payload_hits = self.payload_hits - base.get("payload_hits", 0)
        payload_misses = self.payload_misses - base.get("payload_misses", 0)
        digest_hits = self.digest_hits - base.get("digest_hits", 0)
        digest_misses = self.digest_misses - base.get("digest_misses", 0)
        return {
            "payload": {"hits": payload_hits, "misses": payload_misses},
            "digest": {"hits": digest_hits, "misses": digest_misses},
        }

    def reset(self) -> None:
        self.payload_hits = 0
        self.payload_misses = 0
        self.digest_hits = 0
        self.digest_misses = 0


STATS = CodecStats()


# ---------------------------------------------------------------------------
# legacy mode (pre-codec cost profile, kept for the hot-path benchmark)
# ---------------------------------------------------------------------------


class _LegacyMode:
    """When enabled, payloads fall back to per-call JSON canonicalization.

    This reproduces the pre-codec behaviour -- ``json.dumps(...,
    sort_keys=True, default=str)`` with stringified dict keys, no memoization
    anywhere -- so ``bench_hotpath.py`` can measure the real before/after gap
    inside one process.  Never enable it outside benchmarks: the JSON form is
    *not* injective.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


LEGACY = _LegacyMode()


class legacy_json_encoding:
    """Context manager forcing the legacy JSON path (benchmarks only).

    Re-entrant: the previous mode is restored on exit, so a nested context
    can never silently switch an enclosing benchmark scope back to the
    optimized path (or vice versa).
    """

    def __init__(self) -> None:
        self._previous = False

    def __enter__(self) -> None:
        self._previous = LEGACY.enabled
        LEGACY.enabled = True

    def __exit__(self, *exc_info) -> None:
        LEGACY.enabled = self._previous


def _jsonify(value: Any) -> Any:
    """Mimic the old payload shape: stringified dict keys, stringified bytes."""
    if isinstance(value, dict):
        return {str(key): _jsonify(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, bytes):
        return value.hex()
    return value


def legacy_json_bytes(value: Any) -> bytes:
    """The pre-codec canonical form: per-call, JSON, ``default=str`` fallback."""
    return json.dumps(_jsonify(value), sort_keys=True, default=str).encode()


def encode_payload(build_fields: Callable[[], Any]) -> bytes:
    """Encode a payload honouring the legacy-mode switch (no memoization here)."""
    if LEGACY.enabled:
        return legacy_json_bytes(build_fields())
    return encode_canonical(build_fields())


# ---------------------------------------------------------------------------
# per-object memoisation (frozen dataclasses)
# ---------------------------------------------------------------------------
#
# Frozen dataclasses still own a plain ``__dict__``; the memo slots below are
# written through ``object.__setattr__`` and are invisible to the generated
# ``__eq__``/``__hash__`` and to ``dataclasses.fields`` (so the canonical
# encoding of an object never includes its own caches).


def memoized_payload(obj: Any, build_fields: Callable[[], Any]) -> bytes:
    """Canonical payload of ``obj``, encoded at most once per object."""
    if LEGACY.enabled:
        return legacy_json_bytes(build_fields())
    cached = obj.__dict__.get("_payload_memo")
    if cached is None:
        cached = encode_canonical(build_fields())
        object.__setattr__(obj, "_payload_memo", cached)
        STATS.payload_misses += 1
    else:
        STATS.payload_hits += 1
    return cached


def prime_payload(obj: Any, payload: bytes) -> None:
    """Seed an object's payload memo with canonical bytes computed elsewhere.

    Used when one object's payload is known to equal another's by
    construction (e.g. a re-built ``ClientRequest`` whose signature is
    excluded from its own payload), so the clone need not re-encode.
    """
    if LEGACY.enabled:
        return
    object.__setattr__(obj, "_payload_memo", payload)


def memoized_packed_payload(
    obj: Any, encoder: Callable[..., bytes], build_fields: Callable[[], Any], values: tuple[Any, ...]
) -> bytes:
    """Like :func:`memoized_payload`, but the first encode uses a compiled
    fixed-layout ``encoder`` (see :func:`compile_fixed_dict`) over ``values``
    instead of walking ``build_fields()``.  ``build_fields`` is still needed
    for the legacy-JSON benchmark mode, which has no fast path by design.
    """
    if LEGACY.enabled:
        return legacy_json_bytes(build_fields())
    cached = obj.__dict__.get("_payload_memo")
    if cached is None:
        cached = encoder(*values)
        object.__setattr__(obj, "_payload_memo", cached)
        STATS.payload_misses += 1
    else:
        STATS.payload_hits += 1
    return cached


def memoized_digest(obj: Any, build_fields: Callable[[], Any]) -> bytes:
    """SHA-256 of the canonical payload, hashed at most once per object."""
    if LEGACY.enabled:
        return hashlib.sha256(legacy_json_bytes(build_fields())).digest()
    cached = obj.__dict__.get("_digest_memo")
    if cached is None:
        cached = hashlib.sha256(memoized_payload(obj, build_fields)).digest()
        object.__setattr__(obj, "_digest_memo", cached)
        STATS.digest_misses += 1
    else:
        STATS.digest_hits += 1
    return cached
