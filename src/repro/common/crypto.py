"""Authenticated-communication substrate.

The paper (Section 3, *Authenticated Communication*) uses two primitives:

* **MACs** for intra-shard messages: cheap, symmetric, no non-repudiation.
* **Digital signatures (DS)** for cross-shard messages: asymmetric,
  non-repudiable -- a receiver can prove to a third party who signed.

Running real public-key cryptography adds nothing to a protocol-level
reproduction, so this module implements both primitives on top of
HMAC-SHA256 while preserving the *semantics* the protocol relies on:

* A MAC can only be produced and verified by the two endpoints that share the
  pairwise secret (``MacAuthenticator``).
* A signature can only be produced by the holder of the signing key, but can
  be verified by *anyone* holding the public registry (``SignatureScheme``),
  which is exactly the non-repudiation property Forward certificates need.

Byzantine replicas in the simulator never receive other replicas' keys, so
impersonation is impossible by construction, matching the system model.
"""

from __future__ import annotations

import hashlib
import hmac
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

from repro.common.codec import register_wire_type
from repro.errors import CryptoError

DIGEST_SIZE = 32

#: Default capacity of the keystore's verification memo caches.
DEFAULT_VERIFY_CACHE_SIZE = 65_536

_MISS = object()


class LruCache:
    """A small LRU memo with hit/miss counters.

    Verification of a ``(signer, signature, payload)`` triple is a pure
    function of key material, so its result can be memoised safely; replicas
    re-verify the same Forward certificates on every retransmission and at
    every one of the ``f + 1`` matching receptions, which makes signature
    re-verification the dominant cost of cross-shard Forward processing.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise CryptoError("LruCache needs a positive maxsize")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Any:
        value = self._data.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return _MISS
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> dict[str, int]:
        return {"size": len(self._data), "hits": self.hits, "misses": self.misses}


def sha256(data: bytes) -> bytes:
    """Collision-resistant digest ``H(v)`` used throughout the protocol."""
    return hashlib.sha256(data).digest()


def digest_hex(data: bytes) -> str:
    """Hex form of :func:`sha256`, convenient for logging and block hashes."""
    return hashlib.sha256(data).hexdigest()


@register_wire_type
@dataclass(frozen=True)
class Signature:
    """A digital signature over a message digest.

    ``signer`` identifies the signing entity (replica or client name); the
    ``value`` is the raw signature bytes.  Signatures are compared by value,
    so they can be collected into sets when building commit certificates.
    """

    signer: str
    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) != DIGEST_SIZE:
            raise CryptoError(f"signature must be {DIGEST_SIZE} bytes, got {len(self.value)}")


class KeyStore:
    """Holds per-entity secrets for the whole deployment.

    A single ``KeyStore`` is created when a cluster is built; it hands each
    replica its own private signing key and the pairwise MAC secrets it needs.
    Only the key material handed out is available to a node, so a Byzantine
    node cannot forge messages from others.
    """

    def __init__(
        self,
        seed: bytes = b"ringbft-repro",
        *,
        verify_cache_size: int = DEFAULT_VERIFY_CACHE_SIZE,
    ) -> None:
        self._seed = seed
        self._signing_keys: dict[str, bytes] = {}
        #: Shared memo caches for signature / certificate verification;
        #: ``verify_cache_size=0`` disables memoisation entirely.
        self.verify_cache: LruCache | None = (
            LruCache(verify_cache_size) if verify_cache_size else None
        )
        self.certificate_cache: LruCache | None = (
            LruCache(verify_cache_size) if verify_cache_size else None
        )

    def signing_key(self, entity: str) -> bytes:
        """Private signing key for ``entity``; only given to that entity."""
        key = self._signing_keys.get(entity)
        if key is None:
            key = hmac.new(self._seed, b"sign|" + entity.encode(), hashlib.sha256).digest()
            self._signing_keys[entity] = key
        return key

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss counters of the verification memo caches.

        The ``is not None`` checks matter: :class:`LruCache` defines
        ``__len__``, so a merely *empty* cache is falsy and a plain truthiness
        test would misreport it as disabled.
        """
        return {
            "verify": self.verify_cache.stats() if self.verify_cache is not None else {},
            "certificate": (
                self.certificate_cache.stats() if self.certificate_cache is not None else {}
            ),
        }

    def mac_key(self, a: str, b: str) -> bytes:
        """Pairwise MAC secret shared by entities ``a`` and ``b``.

        Broadcast authentication deliberately stays *pairwise* (a PBFT
        authenticator is a vector of per-peer tags): a shared audience key
        would let any of the up-to-``f`` Byzantine members of a shard forge
        tags impersonating the primary to honest peers -- exactly the forgery
        pairwise MACs exist to prevent.  The multicast fast path therefore
        optimises the *serialization* under the tags (one memoised payload
        for all ``n`` HMACs), never the key structure.
        """
        lo, hi = sorted((a, b))
        return hmac.new(self._seed, b"mac|" + lo.encode() + b"|" + hi.encode(), hashlib.sha256).digest()


class SignatureScheme:
    """Digital-signature emulation with a public verification registry.

    ``sign`` requires the signer's private key (obtained from the
    :class:`KeyStore`); ``verify`` only needs the signer's *name* because the
    registry re-derives the verification tag, mirroring how anyone holding a
    public key can verify an Ed25519 signature.
    """

    def __init__(self, keystore: KeyStore) -> None:
        self._keystore = keystore

    def sign(self, entity: str, payload: bytes, private_key: bytes | None = None) -> Signature:
        """Sign ``payload`` as ``entity``.

        ``private_key`` may be passed explicitly (the normal path for replica
        code that was handed its key at start-up); when omitted the keystore
        is consulted directly, which is convenient in tests.
        """
        key = private_key if private_key is not None else self._keystore.signing_key(entity)
        expected = self._keystore.signing_key(entity)
        if not hmac.compare_digest(key, expected):
            raise CryptoError(f"entity {entity!r} presented a key it does not own")
        value = hmac.new(key, payload, hashlib.sha256).digest()
        return Signature(signer=entity, value=value)

    def verify(self, signature: Signature, payload: bytes) -> bool:
        """Return ``True`` iff ``signature`` is a valid signature on ``payload``.

        Results are memoised in the keystore's shared LRU cache: verification
        is deterministic, and the protocol re-checks the same signatures many
        times (Forward certificates, retransmissions, local sharing).
        """
        cache = self._keystore.verify_cache
        if cache is None:
            return self._verify_uncached(signature, payload)
        key = (signature.signer, signature.value, sha256(payload))
        value = cache.get(key)
        if value is _MISS:
            value = self._verify_uncached(signature, payload)
            cache.put(key, value)
        return value

    def _verify_uncached(self, signature: Signature, payload: bytes) -> bool:
        key = self._keystore.signing_key(signature.signer)
        expected = hmac.new(key, payload, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature.value)

    def require_valid(self, signature: Signature, payload: bytes) -> None:
        """Raise :class:`CryptoError` unless the signature verifies."""
        if not self.verify(signature, payload):
            raise CryptoError(f"invalid signature from {signature.signer!r}")


@dataclass
class MacAuthenticator:
    """Pairwise MAC authentication for intra-shard traffic.

    An authenticator is owned by one endpoint (``owner``) and caches the
    pairwise secrets that endpoint shares with its peers.
    """

    owner: str
    keystore: KeyStore
    _cache: dict[str, bytes] = field(default_factory=dict)

    def _key_for(self, peer: str) -> bytes:
        if peer not in self._cache:
            self._cache[peer] = self.keystore.mac_key(self.owner, peer)
        return self._cache[peer]

    def tag(self, peer: str, payload: bytes) -> bytes:
        """MAC tag authenticating ``payload`` for the channel owner -> peer."""
        return hmac.new(self._key_for(peer), payload, hashlib.sha256).digest()

    def verify(self, peer: str, payload: bytes, tag: bytes) -> bool:
        """Verify a MAC tag received from ``peer``."""
        expected = hmac.new(self._key_for(peer), payload, hashlib.sha256).digest()
        return hmac.compare_digest(expected, tag)

    def tag_vector(self, peers: Iterable[str], payload: bytes) -> dict[str, bytes]:
        """The PBFT authenticator: one pairwise tag per audience member.

        This is the broadcast fast path: ``payload`` is resolved once (it is
        memoised on the message), so authenticating a fan-out of ``n`` costs
        ``n`` HMACs over shared bytes instead of ``n`` re-serialisations.
        The key structure stays pairwise -- see :meth:`KeyStore.mac_key`.
        """
        return {peer: self.tag(peer, payload) for peer in peers}


def verify_certificate(
    scheme: SignatureScheme,
    payload: bytes,
    signatures: tuple[Signature, ...] | list[Signature],
    required: int,
) -> bool:
    """Check a certificate of signatures over a common payload.

    A certificate is valid when at least ``required`` signatures from
    *distinct* signers verify over ``payload``.  Used by replicas receiving a
    ``Forward`` message to check that the previous shard really committed the
    transaction (Figure 5, line 31).

    Whole-certificate results are memoised: every replica of the next shard
    receives ``f + 1`` matching Forwards (plus retransmissions) carrying the
    *same* commit certificate, so the second check onwards is a cache hit.
    """
    cache = scheme._keystore.certificate_cache
    if cache is None:
        return _verify_certificate_uncached(scheme, payload, signatures, required)
    key = (
        sha256(payload),
        tuple(sorted((sig.signer, sig.value) for sig in signatures)),
        required,
    )
    value = cache.get(key)
    if value is _MISS:
        value = _verify_certificate_uncached(scheme, payload, signatures, required)
        cache.put(key, value)
    return value


def _verify_certificate_uncached(
    scheme: SignatureScheme,
    payload: bytes,
    signatures: tuple[Signature, ...] | list[Signature],
    required: int,
) -> bool:
    valid_signers = {sig.signer for sig in signatures if scheme.verify(sig, payload)}
    return len(valid_signers) >= required
