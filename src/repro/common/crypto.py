"""Authenticated-communication substrate.

The paper (Section 3, *Authenticated Communication*) uses two primitives:

* **MACs** for intra-shard messages: cheap, symmetric, no non-repudiation.
* **Digital signatures (DS)** for cross-shard messages: asymmetric,
  non-repudiable -- a receiver can prove to a third party who signed.

Running real public-key cryptography adds nothing to a protocol-level
reproduction, so this module implements both primitives on top of
HMAC-SHA256 while preserving the *semantics* the protocol relies on:

* A MAC can only be produced and verified by the two endpoints that share the
  pairwise secret (``MacAuthenticator``).
* A signature can only be produced by the holder of the signing key, but can
  be verified by *anyone* holding the public registry (``SignatureScheme``),
  which is exactly the non-repudiation property Forward certificates need.

Byzantine replicas in the simulator never receive other replicas' keys, so
impersonation is impossible by construction, matching the system model.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

from repro.errors import CryptoError

DIGEST_SIZE = 32


def sha256(data: bytes) -> bytes:
    """Collision-resistant digest ``H(v)`` used throughout the protocol."""
    return hashlib.sha256(data).digest()


def digest_hex(data: bytes) -> str:
    """Hex form of :func:`sha256`, convenient for logging and block hashes."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class Signature:
    """A digital signature over a message digest.

    ``signer`` identifies the signing entity (replica or client name); the
    ``value`` is the raw signature bytes.  Signatures are compared by value,
    so they can be collected into sets when building commit certificates.
    """

    signer: str
    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) != DIGEST_SIZE:
            raise CryptoError(f"signature must be {DIGEST_SIZE} bytes, got {len(self.value)}")


class KeyStore:
    """Holds per-entity secrets for the whole deployment.

    A single ``KeyStore`` is created when a cluster is built; it hands each
    replica its own private signing key and the pairwise MAC secrets it needs.
    Only the key material handed out is available to a node, so a Byzantine
    node cannot forge messages from others.
    """

    def __init__(self, seed: bytes = b"ringbft-repro") -> None:
        self._seed = seed

    def signing_key(self, entity: str) -> bytes:
        """Private signing key for ``entity``; only given to that entity."""
        return hmac.new(self._seed, b"sign|" + entity.encode(), hashlib.sha256).digest()

    def mac_key(self, a: str, b: str) -> bytes:
        """Pairwise MAC secret shared by entities ``a`` and ``b``."""
        lo, hi = sorted((a, b))
        return hmac.new(self._seed, b"mac|" + lo.encode() + b"|" + hi.encode(), hashlib.sha256).digest()


class SignatureScheme:
    """Digital-signature emulation with a public verification registry.

    ``sign`` requires the signer's private key (obtained from the
    :class:`KeyStore`); ``verify`` only needs the signer's *name* because the
    registry re-derives the verification tag, mirroring how anyone holding a
    public key can verify an Ed25519 signature.
    """

    def __init__(self, keystore: KeyStore) -> None:
        self._keystore = keystore

    def sign(self, entity: str, payload: bytes, private_key: bytes | None = None) -> Signature:
        """Sign ``payload`` as ``entity``.

        ``private_key`` may be passed explicitly (the normal path for replica
        code that was handed its key at start-up); when omitted the keystore
        is consulted directly, which is convenient in tests.
        """
        key = private_key if private_key is not None else self._keystore.signing_key(entity)
        expected = self._keystore.signing_key(entity)
        if not hmac.compare_digest(key, expected):
            raise CryptoError(f"entity {entity!r} presented a key it does not own")
        value = hmac.new(key, payload, hashlib.sha256).digest()
        return Signature(signer=entity, value=value)

    def verify(self, signature: Signature, payload: bytes) -> bool:
        """Return ``True`` iff ``signature`` is a valid signature on ``payload``."""
        key = self._keystore.signing_key(signature.signer)
        expected = hmac.new(key, payload, hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature.value)

    def require_valid(self, signature: Signature, payload: bytes) -> None:
        """Raise :class:`CryptoError` unless the signature verifies."""
        if not self.verify(signature, payload):
            raise CryptoError(f"invalid signature from {signature.signer!r}")


@dataclass
class MacAuthenticator:
    """Pairwise MAC authentication for intra-shard traffic.

    An authenticator is owned by one endpoint (``owner``) and caches the
    pairwise secrets that endpoint shares with its peers.
    """

    owner: str
    keystore: KeyStore
    _cache: dict[str, bytes] = field(default_factory=dict)

    def _key_for(self, peer: str) -> bytes:
        if peer not in self._cache:
            self._cache[peer] = self.keystore.mac_key(self.owner, peer)
        return self._cache[peer]

    def tag(self, peer: str, payload: bytes) -> bytes:
        """MAC tag authenticating ``payload`` for the channel owner -> peer."""
        return hmac.new(self._key_for(peer), payload, hashlib.sha256).digest()

    def verify(self, peer: str, payload: bytes, tag: bytes) -> bool:
        """Verify a MAC tag received from ``peer``."""
        expected = hmac.new(self._key_for(peer), payload, hashlib.sha256).digest()
        return hmac.compare_digest(expected, tag)


def verify_certificate(
    scheme: SignatureScheme,
    payload: bytes,
    signatures: tuple[Signature, ...] | list[Signature],
    required: int,
) -> bool:
    """Check a certificate of signatures over a common payload.

    A certificate is valid when at least ``required`` signatures from
    *distinct* signers verify over ``payload``.  Used by replicas receiving a
    ``Forward`` message to check that the previous shard really committed the
    transaction (Figure 5, line 31).
    """
    valid_signers = {sig.signer for sig in signatures if scheme.verify(sig, payload)}
    return len(valid_signers) >= required
