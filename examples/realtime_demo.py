"""Real-time demo: the same RingBFT code running on asyncio instead of the simulator.

Every other example defaults to the deterministic discrete-event backend.
This one runs the identical replica implementations on a real asyncio event
loop: protocol timers are real timers and WAN delays are real delays
(compressed 50x so the demo finishes in a couple of wall-clock seconds).
Since the pluggable-engine refactor this is just ``Deployment.build`` with
``backend="realtime"`` -- pass ``--backend sim`` to watch the exact same
workload on the simulator instead and compare the unified results.

Run with::

    python examples/realtime_demo.py
"""

from __future__ import annotations

import argparse

from repro.config import SystemConfig, WorkloadConfig
from repro.engine import Deployment
from repro.txn.transaction import TransactionBuilder


def main(backend: str = "realtime") -> None:
    config = SystemConfig.uniform(
        num_shards=3,
        replicas_per_shard=4,
        workload=WorkloadConfig(num_records=300, batch_size=1, num_clients=1),
    )
    deployment = Deployment.build(
        config, backend=backend, num_clients=2, time_scale=0.02
    )
    clock = "an asyncio event loop (WAN delays compressed 50x)" if backend == "realtime" \
        else "the deterministic simulator"
    print(f"deployment: 3 shards x 4 replicas on {clock}\n")

    transactions = []
    for i in range(4):
        transactions.append(
            TransactionBuilder(f"rt-local-{i}", f"client-{i % 2}")
            .read_modify_write(i % 3, f"user{10 + 100 * (i % 3)}", f"local-{i}")
            .build()
        )
    transactions.append(
        TransactionBuilder("rt-global", "client-0")
        .read_modify_write(0, "user20", "global@0")
        .read_modify_write(1, "user120", "global@1")
        .read_modify_write(2, "user220", "global@2")
        .build()
    )

    result = deployment.run_workload(transactions, timeout=600.0)

    print(f"backend              : {result.backend}")
    print(f"submitted            : {result.submitted}")
    print(f"completed            : {result.completed}")
    print(f"protocol duration    : {result.duration_s:.2f}s")
    print(f"wall-clock duration  : {result.wall_clock_s:.2f}s")
    print(f"avg protocol latency : {result.avg_latency:.3f}s")
    print(f"throughput           : {result.throughput_tps:.1f} txn/s (protocol time)")

    print("\nmessages exchanged:")
    for name, count in sorted(result.message_counts.items()):
        print(f"  {name:15s} {count:5d}")

    print(f"\nledgers consistent across replicas: {result.ledgers_consistent}")
    value = deployment.shard_replicas(2)[0].store.read("user220")
    print(f"cross-shard write visible on shard 2: {value!r}")
    deployment.close()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("sim", "realtime"), default="realtime")
    main(parser.parse_args().backend)
