"""Real-time demo: the same RingBFT code running on asyncio instead of the simulator.

Every other example drives the deterministic discrete-event simulator.  This
one runs the identical replica implementations on a real asyncio event loop:
protocol timers are real timers and WAN delays are real (compressed 50x so
the demo finishes in a couple of wall-clock seconds).  It is the starting
point for turning the reproduction into an actually networked deployment.

Run with::

    python examples/realtime_demo.py
"""

from __future__ import annotations

from repro.config import SystemConfig, WorkloadConfig
from repro.rt.runtime import RealTimeCluster
from repro.txn.transaction import TransactionBuilder


def main() -> None:
    config = SystemConfig.uniform(
        num_shards=3,
        replicas_per_shard=4,
        workload=WorkloadConfig(num_records=300, batch_size=1, num_clients=1),
    )
    cluster = RealTimeCluster(config, num_clients=2, time_scale=0.02, latency_scale=0.02)
    print("real-time deployment: 3 shards x 4 replicas on an asyncio event loop "
          "(WAN delays compressed 50x)\n")

    transactions = []
    for i in range(4):
        transactions.append(
            TransactionBuilder(f"rt-local-{i}", f"client-{i % 2}")
            .read_modify_write(i % 3, f"user{10 + 100 * (i % 3)}", f"local-{i}")
            .build()
        )
    transactions.append(
        TransactionBuilder("rt-global", "client-0")
        .read_modify_write(0, "user20", "global@0")
        .read_modify_write(1, "user120", "global@1")
        .read_modify_write(2, "user220", "global@2")
        .build()
    )

    result = cluster.run_workload(transactions, timeout=20.0)

    print(f"submitted            : {result.submitted}")
    print(f"completed            : {result.completed}")
    print(f"wall-clock duration  : {result.wall_clock_seconds:.2f}s")
    print(f"avg protocol latency : {result.avg_latency:.3f}s (at compressed WAN delays)")
    print(f"throughput           : {result.throughput_tps:.1f} txn/s (wall clock)")

    print("\nmessages exchanged:")
    for name, count in sorted(cluster.message_counts().items()):
        print(f"  {name:15s} {count:5d}")

    consistent = all(cluster.ledgers_consistent(shard) for shard in config.shard_ids)
    print(f"\nledgers consistent across replicas: {consistent}")
    value = cluster.shard_replicas(2)[0].store.read("user220")
    print(f"cross-shard write visible on shard 2: {value!r}")


if __name__ == "__main__":
    main()
