"""Federated banking: atomic cross-bank settlements over RingBFT.

The motivating scenario of the paper is federated data management: several
parties maintain a common database without trusting each other.  This example
models a consortium of banks, one shard per bank.  Intra-bank payments are
single-shard transactions; inter-bank settlements are cross-shard
transactions that must be committed atomically by every involved bank even
though up to ``f`` replicas per bank may be Byzantine.

The example submits a mix of payments and settlements (some of them touching
the same accounts, i.e. conflicting), runs the simulation, and verifies that

* every settlement was committed by all involved banks,
* conflicting settlements were applied in the same order at every bank,
* all replicas of a bank hold identical account state.

Run with::

    python examples/federated_banking.py
"""

from __future__ import annotations

import argparse

from repro import Deployment, SystemConfig, TransactionBuilder
from repro.config import WorkloadConfig

BANKS = {0: "Pacific Trust", 1: "Atlantic Mutual", 2: "Meridian Bank", 3: "Austral Savings"}


def account_key(cluster: Deployment, bank: int, account_index: int) -> str:
    """Pick a record owned by ``bank`` to stand in for an account row."""
    return cluster.table.local_record(bank, account_index)


def intra_bank_payment(cluster: Deployment, txn_id: str, bank: int, account: int, note: str):
    key = account_key(cluster, bank, account)
    return (
        TransactionBuilder(txn_id, "client-0")
        .read_modify_write(bank, key, f"{note} [posted by {BANKS[bank]}]")
        .build()
    )


def settlement(cluster: Deployment, txn_id: str, debtor: int, creditor: int, account: int, amount: int):
    """A cross-bank settlement: one ledger entry on each involved bank."""
    debit_key = account_key(cluster, debtor, account)
    credit_key = account_key(cluster, creditor, account)
    return (
        TransactionBuilder(txn_id, "client-0")
        .read_modify_write(debtor, debit_key, f"debit {amount} -> {BANKS[creditor]} ({txn_id})")
        .read_modify_write(creditor, credit_key, f"credit {amount} <- {BANKS[debtor]} ({txn_id})")
        .build()
    )


def main(backend: str = "sim") -> None:
    config = SystemConfig.uniform(
        num_shards=len(BANKS),
        replicas_per_shard=4,
        workload=WorkloadConfig(num_records=800, batch_size=1, num_clients=1),
    )
    cluster = Deployment.build(config, backend=backend, num_clients=1, batch_size=1,
                               time_scale=0.02)
    print("consortium members:")
    for shard, name in BANKS.items():
        print(f"  shard {shard}: {name} ({config.shard(shard).num_replicas} replicas, "
              f"tolerates {config.shard(shard).max_faulty} Byzantine)")

    # A mix of intra-bank payments and inter-bank settlements.  Settlements
    # s-1 and s-2 both touch Pacific Trust's account 0, so they conflict and
    # must be serialised identically everywhere.
    workload = [
        intra_bank_payment(cluster, "p-1", bank=1, account=3, note="payroll batch 7"),
        settlement(cluster, "s-1", debtor=0, creditor=2, account=0, amount=1_200),
        intra_bank_payment(cluster, "p-2", bank=3, account=5, note="card clearing"),
        settlement(cluster, "s-2", debtor=0, creditor=3, account=0, amount=800),
        settlement(cluster, "s-3", debtor=1, creditor=2, account=4, amount=2_500),
    ]
    for txn in workload:
        cluster.submit(txn)
    print(f"\nsubmitted {len(workload)} transactions "
          f"({sum(1 for t in workload if t.is_cross_shard)} cross-bank settlements)")

    done = cluster.run_until_clients_done(timeout=120.0)
    cluster.backend.run_for(2.0)
    print(f"all transactions settled: {done}")

    print("\nsettlement latencies:")
    for record in sorted(cluster.client.completed, key=lambda r: r.txn_id):
        kind = "cross-bank" if record.cross_shard else "intra-bank"
        print(f"  {record.txn_id:5s} {kind:10s} {record.latency * 1000:7.1f} ms")

    # Atomicity: every involved bank recorded each settlement in its ledger.
    print("\natomic commitment check:")
    for txn in workload:
        if not txn.is_cross_shard:
            continue
        recorded = {
            shard: all(r.ledger.contains_txn(txn.txn_id) for r in cluster.shard_replicas(shard))
            for shard in sorted(txn.involved_shards)
        }
        print(f"  {txn.txn_id}: recorded by all replicas of banks {sorted(txn.involved_shards)}: "
              f"{all(recorded.values())}")

    # Consistency: conflicting settlements serialised identically; replicas agree.
    conflict_order = {
        tuple(replica.ledger.commit_order({"s-1", "s-2"}))
        for replica in cluster.shard_replicas(0)
    }
    print(f"\nconflicting settlements s-1/s-2 ordered identically on Pacific Trust replicas: "
          f"{len(conflict_order) == 1} (order: {next(iter(conflict_order))})")
    for shard, name in BANKS.items():
        states = {tuple(sorted(r.store.items().items())) for r in cluster.shard_replicas(shard)}
        print(f"  {name}: all {config.shard(shard).num_replicas} replicas hold identical state: "
              f"{len(states) == 1}")
    cluster.close()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("sim", "realtime"), default="sim")
    main(parser.parse_args().backend)
