"""Protocol comparison: RingBFT vs AHL vs Sharper on the same workload.

Runs the same small cross-shard-heavy workload through all three sharding BFT
protocols in the message-level simulator and compares what each one paid for
it: cross-shard messages, bytes on the wire, and client latency.  The shapes
mirror Section 2's analysis -- AHL concentrates work on its reference
committee, Sharper pays two global all-to-all rounds, RingBFT keeps
shard-to-shard communication linear.

It then repeats the comparison with the analytical model at the paper's full
scale (15 shards x 28 replicas, 30% cross-shard) to show the corresponding
throughput gap of Figure 8.

Run with::

    python examples/protocol_comparison.py
"""

from __future__ import annotations

import argparse

from repro.analytical import DeploymentSpec, estimate, model_by_name
from repro.baselines.ahl.replica import AhlReplica
from repro.baselines.sharper.replica import SharperReplica
from repro.config import SystemConfig, WorkloadConfig
from repro.engine import Deployment
from repro.core.replica import RingBftReplica
from repro.metrics.collector import summarize
from repro.workloads.ycsb import YcsbWorkloadGenerator

PROTOCOLS = {
    "RingBFT": RingBftReplica,
    "AHL": AhlReplica,
    "Sharper": SharperReplica,
}

CROSS_SHARD_MESSAGES = {
    "RingBFT": ("Forward", "Execute", "RemoteView"),
    "AHL": ("Prepare2PC", "Vote2PC", "CommitteeVote", "Decide2PC"),
    "Sharper": ("CrossPropose", "CrossPrepare", "CrossCommit"),
}


def run_protocol(name: str, replica_class, backend: str = "sim") -> dict:
    workload = WorkloadConfig(
        num_records=600, cross_shard_fraction=0.6, batch_size=1, num_clients=2, seed=99
    )
    config = SystemConfig.uniform(4, 4, workload=workload)
    cluster = Deployment.build(
        config, backend=backend, replica_class=replica_class, num_clients=2, batch_size=1,
        seed=99, time_scale=0.02,
    )
    generator = YcsbWorkloadGenerator(cluster.table, cluster.directory.ring, workload, seed=99)

    transactions = generator.generate(20, "client-0") + generator.generate(10, "client-1")
    for i, txn in enumerate(transactions):
        cluster.submit(txn, f"client-{0 if i < 20 else 1}")
    cluster.run_until_clients_done(timeout=300.0)
    cluster.backend.run_for(5.0)

    counts = cluster.message_counts()
    cross_messages = sum(counts.get(m, 0) for m in CROSS_SHARD_MESSAGES[name])
    records = [record for client in cluster.clients.values() for record in client.completed]
    summary = summarize(records)
    bytes_total = sum(replica.stats.total_bytes for replica in cluster.replicas.values())
    cluster.close()
    return {
        "completed": summary.completed,
        "avg_latency_ms": summary.avg_latency * 1000,
        "total_messages": cluster.total_messages(),
        "cross_shard_messages": cross_messages,
        "megabytes_sent": bytes_total / 1e6,
    }


def main(backend: str = "sim") -> None:
    print(f"protocol-mode comparison (4 shards x 4 replicas, 30 transactions, 60% cross-shard, "
          f"{backend!r} backend)\n")
    header = f"{'protocol':10s} {'done':>5s} {'avg latency':>12s} {'messages':>10s} {'cross-shard':>12s} {'MB sent':>9s}"
    print(header)
    print("-" * len(header))
    for name, replica_class in PROTOCOLS.items():
        result = run_protocol(name, replica_class, backend)
        print(
            f"{name:10s} {result['completed']:5d} {result['avg_latency_ms']:10.1f}ms "
            f"{result['total_messages']:10d} {result['cross_shard_messages']:12d} "
            f"{result['megabytes_sent']:9.2f}"
        )

    print("\npaper-scale estimate (analytical model, 15 shards x 28 replicas, 30% cross-shard)\n")
    spec = DeploymentSpec()
    print(f"{'protocol':10s} {'throughput':>14s} {'latency':>10s} {'bottleneck':>26s}")
    print("-" * 64)
    results = {}
    for name in PROTOCOLS:
        estimate_result = estimate(model_by_name(name), spec)
        results[name] = estimate_result
        print(
            f"{name:10s} {estimate_result.throughput_tps:11.0f} tps "
            f"{estimate_result.latency_s:8.2f}s {estimate_result.bottleneck:>26s}"
        )
    ring = results["RingBFT"].throughput_tps
    print(
        f"\nRingBFT advantage: {ring / results['Sharper'].throughput_tps:.1f}x over Sharper, "
        f"{ring / results['AHL'].throughput_tps:.1f}x over AHL "
        f"(the paper reports up to 4x and 16-18x)."
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("sim", "realtime"), default="sim")
    main(parser.parse_args().backend)
