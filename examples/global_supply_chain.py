"""Global supply chain: complex cross-shard transactions with data dependencies.

Section 8.8 of the paper evaluates *complex* cross-shard transactions whose
fragments need data held by other shards.  This example models a supply chain
where each participant (manufacturer, shipping line, customs broker,
retailer) runs its own shard, and a shipment hand-off must read the upstream
party's record while updating the local one:

* the shipping line's manifest entry depends on the manufacturer's lot record,
* the customs declaration depends on both the manifest and the lot,
* the retailer's goods-received note depends on the customs declaration.

RingBFT resolves these dependencies during the second rotation: the
accumulated write sets (Sigma) carried by ``Execute`` messages supply every
shard with the upstream values it needs.

Run with::

    python examples/global_supply_chain.py
"""

from __future__ import annotations

import argparse

from repro import Deployment, SystemConfig, TransactionBuilder
from repro.config import WorkloadConfig

PARTIES = {0: "manufacturer", 1: "shipping-line", 2: "customs-broker", 3: "retailer"}


def main(backend: str = "sim") -> None:
    config = SystemConfig.uniform(
        num_shards=len(PARTIES),
        replicas_per_shard=4,
        workload=WorkloadConfig(num_records=400, batch_size=1, num_clients=1),
    )
    cluster = Deployment.build(config, backend=backend, num_clients=1, batch_size=1,
                               time_scale=0.02)

    lot_key = cluster.table.local_record(0, 0)        # manufacturer's lot record
    manifest_key = cluster.table.local_record(1, 0)   # shipping manifest entry
    customs_key = cluster.table.local_record(2, 0)    # customs declaration
    grn_key = cluster.table.local_record(3, 0)        # retailer goods-received note

    # Seed the manufacturer's lot record with a recognisable value first.
    seed = (
        TransactionBuilder("seed-lot", "client-0")
        .read_modify_write(0, lot_key, "LOT-778|widgets|qty=1200")
        .build()
    )
    cluster.submit(seed)
    cluster.run_until_clients_done(timeout=60.0)
    print(f"seeded manufacturer lot record: {cluster.primary_of(0).store.read(lot_key)!r}")

    # The hand-off transaction: one fragment per party, each fragment's write
    # depending on the upstream parties' records (a complex cst).
    handoff = (
        TransactionBuilder("shipment-handoff", "client-0")
        .read(0, lot_key)
        .write(0, lot_key, "LOT-778|status=shipped")
        .read(1, manifest_key)
        .write(1, manifest_key, "MANIFEST-41|vessel=Aurora", depends_on=((0, lot_key),))
        .read(2, customs_key)
        .write(2, customs_key, "CUSTOMS-DECL-9", depends_on=((0, lot_key), (1, manifest_key)))
        .read(3, grn_key)
        .write(3, grn_key, "GRN-2026-0617", depends_on=((2, customs_key),))
        .build()
    )
    print(f"\nhand-off transaction touches shards {sorted(handoff.involved_shards)}, "
          f"is complex: {handoff.is_complex}, remote reads: {handoff.remote_read_count}")

    cluster.submit(handoff)
    done = cluster.run_until_clients_done(timeout=120.0)
    cluster.backend.run_for(2.0)
    print(f"hand-off committed atomically on all parties: {done}")

    print("\nper-party records after the hand-off (dependencies resolved in-line):")
    for shard, party in PARTIES.items():
        key = {0: lot_key, 1: manifest_key, 2: customs_key, 3: grn_key}[shard]
        value = cluster.primary_of(shard).store.read(key)
        print(f"  {party:15s} {key:10s} -> {value!r}")

    # Show that the shipping line's manifest embeds the manufacturer's lot
    # value it depended on, proving the second rotation carried Sigma.
    manifest_value = cluster.primary_of(1).store.read(manifest_key)
    print(f"\nmanifest references the upstream lot record: {lot_key in manifest_value}")

    print("\ncross-shard flow messages:")
    counts = cluster.message_counts()
    for name in ("PrePrepare", "Prepare", "Commit", "Forward", "Execute"):
        print(f"  {name:12s} {counts.get(name, 0):5d}")

    rotations = 2
    print(f"\nconsensus required {rotations} rotations around the ring of "
          f"{len(handoff.involved_shards)} involved shards, as the paper guarantees.")
    cluster.close()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("sim", "realtime"), default="sim")
    main(parser.parse_args().backend)
