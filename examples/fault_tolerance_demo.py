"""Fault-tolerance demo: primary failure, view change, and recovery.

Reproduces the scenario of Figure 9 at demo scale: a RingBFT deployment keeps
processing a mixed workload while the primaries of several shards crash.  The
replicas detect the failures through their local timers, run the PBFT view
change the paper reuses, and the new primaries drain the backlog -- clients
eventually receive every response.

Run with::

    python examples/fault_tolerance_demo.py
"""

from __future__ import annotations

from repro.config import SystemConfig, TimerConfig, WorkloadConfig
from repro.engine import Deployment
from repro.core.replica import RingBftReplica
from repro.faults.injector import FaultInjector
from repro.metrics.collector import ThroughputSeries, summarize
from repro.workloads.ycsb import YcsbWorkloadGenerator

NUM_SHARDS = 5
FAILED_SHARDS = 2
FAILURE_TIME = 6.0
HORIZON = 30.0
RATE_PER_SECOND = 4.0


def main() -> None:
    workload = WorkloadConfig(
        num_records=2_000,
        cross_shard_fraction=0.3,
        involved_shards=3,
        batch_size=1,
        num_clients=4,
    )
    timers = TimerConfig(
        local_timeout=2.0, remote_timeout=4.0, transmit_timeout=6.0, client_timeout=3.0
    )
    config = SystemConfig.uniform(NUM_SHARDS, 4, timers=timers, workload=workload)
    cluster = Deployment.build(config, replica_class=RingBftReplica, num_clients=4, batch_size=1)
    generator = YcsbWorkloadGenerator(cluster.table, cluster.directory.ring, workload)

    # Open-loop workload for the whole horizon.
    client_ids = list(cluster.clients)
    total = int(RATE_PER_SECOND * HORIZON)
    for i in range(total):
        client_id = client_ids[i % len(client_ids)]

        def _submit(client_id=client_id):
            cluster.submit(generator.generate(1, client_id)[0], client_id)

        cluster.scheduler.schedule(i / RATE_PER_SECOND, _submit)

    # Crash the primaries of the first two shards mid-run.
    injector = FaultInjector(cluster)
    for shard in range(FAILED_SHARDS):
        injector.crash_primary(shard, at=FAILURE_TIME)

    print(f"running {total} transactions over {HORIZON:.0f}s of simulated time; "
          f"primaries of shards 0..{FAILED_SHARDS - 1} crash at t={FAILURE_TIME:.0f}s\n")
    cluster.run(duration=HORIZON + 30.0, max_events=5_000_000)

    for when, what in injector.log:
        print(f"  t={when:5.1f}s  fault injected: {what}")
    for shard in range(FAILED_SHARDS):
        survivors = [r for r in cluster.shard_replicas(shard) if not r.crashed]
        views = sorted({r.view for r in survivors})
        print(f"  shard {shard}: surviving replicas installed view(s) {views}, "
              f"new primary is {survivors[0].primary}")

    records = [record for client in cluster.clients.values() for record in client.completed]
    summary = summarize(records)
    print(f"\ncompleted {summary.completed}/{total} transactions, "
          f"average latency {summary.avg_latency:.2f}s, p99 {summary.p99_latency:.2f}s")

    print("\nthroughput timeline (5s buckets):")
    series = ThroughputSeries(bucket_seconds=5.0).compute(records, horizon=HORIZON)
    peak = max(rate for _, rate in series) or 1.0
    for start, rate in series:
        bar = "#" * int(30 * rate / peak)
        marker = " <- failure window" if start <= FAILURE_TIME < start + 5.0 else ""
        print(f"  t={start:5.1f}s  {rate:5.1f} txn/s  {bar}{marker}")

    consistent = all(cluster.ledgers_consistent(shard) for shard in config.shard_ids)
    print(f"\nledgers consistent on every shard despite the failures: {consistent}")


if __name__ == "__main__":
    main()
