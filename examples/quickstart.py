"""Quickstart: a three-shard RingBFT deployment on a pluggable backend.

Builds a small sharded deployment (3 shards x 4 replicas), submits one
single-shard transaction and one cross-shard transaction through a client,
drives the execution backend until both complete, and prints what happened:
latencies, the messages each protocol phase produced, and the per-shard
ledgers.

The same code runs on either execution engine::

    python examples/quickstart.py                      # deterministic simulator
    python examples/quickstart.py --backend realtime   # asyncio, real timers
"""

from __future__ import annotations

import argparse

from repro import Deployment, SystemConfig, TransactionBuilder
from repro.config import WorkloadConfig


def main(backend: str = "sim") -> None:
    # ------------------------------------------------------------------
    # 1. Describe the deployment: 3 shards of 4 replicas, tiny YCSB table.
    # ------------------------------------------------------------------
    config = SystemConfig.uniform(
        num_shards=3,
        replicas_per_shard=4,
        workload=WorkloadConfig(num_records=300, batch_size=1, num_clients=1),
    )
    deployment = Deployment.build(config, backend=backend, num_clients=1, batch_size=1,
                                  time_scale=0.02)
    print(f"deployment: {config.num_shards} shards x {config.shards[0].num_replicas} replicas "
          f"({config.total_replicas} replicas total) on the {backend!r} backend, "
          f"ring order {deployment.directory.ring.order}")

    # ------------------------------------------------------------------
    # 2. Submit a single-shard transaction (ordered by shard 0 alone).
    # ------------------------------------------------------------------
    single = (
        TransactionBuilder("quickstart-single", "client-0")
        .read_modify_write(0, "user5", "hello-from-shard-0")
        .build()
    )

    # ------------------------------------------------------------------
    # 3. And a cross-shard transaction touching all three shards; it will
    #    travel the ring (process, forward, re-transmit) and execute on every
    #    involved shard.
    # ------------------------------------------------------------------
    cross = (
        TransactionBuilder("quickstart-cross", "client-0")
        .read_modify_write(0, "user10", "ring-step-0")
        .read_modify_write(1, "user150", "ring-step-1")
        .read_modify_write(2, "user250", "ring-step-2")
        .build()
    )

    # ------------------------------------------------------------------
    # 4. Run the workload until the client has both responses; the result is
    #    the same RunResult structure on either backend.
    # ------------------------------------------------------------------
    result = deployment.run_workload([single, cross], timeout=60.0)
    print(f"\nall transactions completed: {result.all_completed} "
          f"(protocol time {result.duration_s:.3f}s, wall clock {result.wall_clock_s:.3f}s)")
    for record in deployment.client.completed:
        kind = "cross-shard" if record.cross_shard else "single-shard"
        print(f"  {record.txn_id:22s} {kind:12s} latency = {record.latency * 1000:7.1f} ms")

    # ------------------------------------------------------------------
    # 5. Inspect what the protocol did.
    # ------------------------------------------------------------------
    print("\nmessages exchanged (all replicas):")
    for name, count in sorted(result.message_counts.items()):
        print(f"  {name:15s} {count:5d}")

    print("\nper-shard ledgers:")
    for shard in config.shard_ids:
        primary = deployment.primary_of(shard)
        blocks = [block.txn_ids for block in primary.ledger.blocks()[1:]]
        consistent = deployment.ledgers_consistent(shard)
        print(f"  shard {shard}: {len(blocks)} block(s) {blocks} | replicas consistent: {consistent}")

    print("\ncommitted values:")
    for shard, key in ((0, "user10"), (1, "user150"), (2, "user250")):
        value = deployment.primary_of(shard).store.read(key)
        print(f"  shard {shard} {key} = {value!r}")

    deployment.close()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=("sim", "realtime"), default="sim")
    main(parser.parse_args().backend)
