"""Ensure the in-tree package is importable when running pytest from the repo root.

The offline environment lacks the ``wheel`` package that ``pip install -e .``
needs to build a PEP 660 editable wheel, so the test and benchmark suites fall
back to importing straight from ``src/``.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
